package predictor

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/lexgen"
)

// Manager processes an aggregate cluster log stream concurrently: nodes are
// sharded across worker goroutines by node-ID hash, each worker owning the
// parse drivers of its shard. Per-node event ordering is preserved (one node
// always maps to the same worker, and worker queues are FIFO), which is all
// Aarohi's semantics need — drivers of different nodes never interact.
//
// This is the deployment shape of the paper's Fig. 16: the SMW ingests the
// whole machine's logs, and per-node predictor instances run independently;
// sharding turns that independence into multicore throughput.
type Manager struct {
	workers []*managerWorker
	results chan Output
	wg      sync.WaitGroup
}

type managerWorker struct {
	in   chan managerEvent
	pred *Predictor
}

type managerEvent struct {
	tok core.Token
	msg string // raw message body; scanned in the worker when non-empty
}

// NewManager builds a concurrent predictor with the given worker count
// (0 → GOMAXPROCS). Each worker holds an independent Predictor over the same
// chains and inventory; results (predictions and observed failures) arrive
// on Results.
func NewManager(chains []core.FailureChain, inventory []core.Template, opts Options, workers int) (*Manager, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := &Manager{results: make(chan Output, 256)}
	for i := 0; i < workers; i++ {
		p, err := New(chains, inventory, opts)
		if err != nil {
			return nil, fmt.Errorf("predictor: manager worker %d: %w", i, err)
		}
		w := &managerWorker{in: make(chan managerEvent, 512), pred: p}
		m.workers = append(m.workers, w)
		m.wg.Add(1)
		go m.run(w)
	}
	return m, nil
}

func (m *Manager) run(w *managerWorker) {
	defer m.wg.Done()
	for ev := range w.in {
		var out Output
		if ev.msg != "" {
			id, ok := w.pred.Scanner().Scan(ev.msg)
			w.pred.linesScanned++
			if !ok {
				w.pred.discarded++
				continue
			}
			w.pred.tokens++
			ev.tok.Phrase = id
			out = w.pred.processToken(ev.tok)
		} else {
			out = w.pred.ProcessToken(ev.tok)
		}
		if out.Prediction != nil || out.Failure != nil {
			m.results <- out
		}
	}
}

// Results delivers predictions and observed failures. It is closed by Close
// after all pending events drain.
func (m *Manager) Results() <-chan Output { return m.results }

func (m *Manager) workerFor(node string) *managerWorker {
	h := fnv.New32a()
	h.Write([]byte(node))
	return m.workers[h.Sum32()%uint32(len(m.workers))]
}

// ProcessLine routes one raw log line to its node's worker. Scanning happens
// inside the worker, in parallel across shards.
func (m *Manager) ProcessLine(line string) error {
	ts, node, msg, err := lexgen.ParseLine(line)
	if err != nil {
		return err
	}
	m.workerFor(node).in <- managerEvent{
		tok: core.Token{Time: ts, Node: node},
		msg: msg,
	}
	return nil
}

// ProcessToken routes one pre-scanned token to its node's worker.
func (m *Manager) ProcessToken(tok core.Token) {
	m.workerFor(tok.Node).in <- managerEvent{tok: tok}
}

// Close drains every worker and closes Results. The caller must consume
// Results concurrently (or after Close returns the channel is fully
// buffered-drained-closed — consume with range).
func (m *Manager) Close() {
	for _, w := range m.workers {
		close(w.in)
	}
	go func() {
		m.wg.Wait()
		close(m.results)
	}()
}

// Stats aggregates the counters of every worker. Call only after Close and
// Results drain (workers must be quiescent).
func (m *Manager) Stats() Stats {
	var st Stats
	for _, w := range m.workers {
		ws := w.pred.Stats()
		st.LinesScanned += ws.LinesScanned
		st.Tokens += ws.Tokens
		st.Discarded += ws.Discarded
		st.Nodes += ws.Nodes
		st.Parser.Tokens += ws.Parser.Tokens
		st.Parser.Irrelevant += ws.Parser.Irrelevant
		st.Parser.Consumed += ws.Parser.Consumed
		st.Parser.Skipped += ws.Parser.Skipped
		st.Parser.Interleaved += ws.Parser.Interleaved
		st.Parser.TimeoutResets += ws.Parser.TimeoutResets
		st.Parser.Matches += ws.Parser.Matches
	}
	return st
}
