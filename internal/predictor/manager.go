package predictor

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lexgen"
)

// ErrClosed is returned by ProcessLine/ProcessToken after Close: the manager
// no longer accepts events.
var ErrClosed = errors.New("predictor: manager closed")

// Manager processes an aggregate cluster log stream concurrently: nodes are
// sharded across worker goroutines by node-ID hash, each worker owning the
// parse drivers of its shard. Per-node event ordering is preserved (one node
// always maps to the same worker, and worker queues are FIFO), which is all
// Aarohi's semantics need — drivers of different nodes never interact.
//
// This is the deployment shape of the paper's Fig. 16: the SMW ingests the
// whole machine's logs, and per-node predictor instances run independently;
// sharding turns that independence into multicore throughput.
//
// Lifecycle: ProcessLine/ProcessToken may be called from any number of
// goroutines concurrently with each other, with Stats, and with Close. After
// Close, Process* calls return ErrClosed.
type Manager struct {
	workers []*managerWorker
	results chan Output
	wg      sync.WaitGroup

	// fpHex is the hex form of the model fingerprint, stamped onto every
	// emitted Output so consumers can attribute predictions to a model
	// version across hot-swaps.
	fpHex string

	// accepted counts lines and events admitted by Process* — enqueued to a
	// worker, or (ProcessLineBytes) scanned and discarded in the caller.
	// After Results closes, Stats().LinesScanned reconciles with it exactly:
	// every accepted event is counted by exactly one scan.
	accepted atomic.Uint64

	mu     sync.RWMutex // guards closed; held (R) across worker sends
	closed bool

	// nodes deduplicates node-name strings for the byte-slice ingest path.
	nodes nodeIntern

	// heartbeat, when set, observes the (node, timestamp) of every line the
	// ingest paths successfully parse — benign chatter included — giving a
	// liveness detector the full per-node last-seen signal, not just the
	// trickle of scanner matches. Stored atomically so it can be attached to
	// a manager that is already processing lines (boot, hot-swap).
	heartbeat atomic.Pointer[func(node string, ts time.Time)]

	// batchFree/builderFree recycle the batch-path shells between callers and
	// workers. Buffered channels of concrete pointer types stand in for
	// sync.Pool: Get is a non-blocking receive (a miss allocates cold),
	// Put a non-blocking send (overflow is left to the GC), and no value ever
	// crosses an interface boundary on the hot path.
	batchFree   chan *eventBatch
	builderFree chan *batchBuilder
}

// nodeIntern is a bounded string intern table: node names repeat endlessly
// (a cluster has thousands of nodes, not millions), so after warm-up every
// lookup is a copy-free map hit. The bound caps memory against garbage node
// fields in corrupt input; past it, misses simply allocate.
type nodeIntern struct {
	mu sync.RWMutex
	m  map[string]string
}

// maxInternedNodes bounds the intern table (~64k names ≈ a few MiB).
const maxInternedNodes = 1 << 16

//aarohi:hotpath
func (ni *nodeIntern) get(b []byte) string {
	ni.mu.RLock()
	s, ok := ni.m[string(b)] // compiler-recognized copy-free map lookup
	ni.mu.RUnlock()
	if ok {
		return s
	}
	return ni.intern(b)
}

// intern is the cold miss path: first sighting of a node name.
func (ni *nodeIntern) intern(b []byte) string {
	ni.mu.Lock()
	defer ni.mu.Unlock()
	if s, ok := ni.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if ni.m == nil {
		ni.m = make(map[string]string)
	}
	if len(ni.m) < maxInternedNodes {
		ni.m[s] = s
	}
	return s
}

type managerWorker struct {
	in chan managerEvent

	// mu is held by the worker goroutine while it mutates pred, and by
	// Stats() while it snapshots pred's counters. It is effectively
	// uncontended on the hot path (the worker is the only steady holder).
	mu   sync.Mutex
	pred *Predictor
}

type managerEvent struct {
	tok core.Token
	msg string // raw message body; scanned in the worker when non-empty

	// scanned marks a line-derived token already classified by the caller
	// (ProcessLineBytes): the worker applies the line counters without
	// re-scanning.
	scanned bool

	// flush is a barrier marker (see Flush): the worker forwards it through
	// the results channel instead of processing it.
	flush chan<- struct{}

	// batch, when non-nil, carries a group of pre-parsed line events
	// (ProcessLineBatch): one channel send delivers the whole group, and the
	// worker returns the shell to the freelist when done.
	batch *eventBatch
}

// batchEntry is one pre-parsed line inside an eventBatch: exactly the state a
// ProcessLine send carries, minus the per-line channel traffic.
type batchEntry struct {
	tok core.Token
	msg string
}

// eventBatch groups the batchEntries bound for a single worker. Shells cycle
// through Manager.batchFree so steady-state batching never allocates.
type eventBatch struct {
	entries []batchEntry
}

// batchBuilder is the per-call scatter table of ProcessLineBatch: one slot
// per worker, filled lazily as lines route to shards. Shells cycle through
// Manager.builderFree.
type batchBuilder struct {
	shards []*eventBatch
}

// NewManager builds a concurrent predictor with the given worker count
// (0 → GOMAXPROCS). Each worker holds an independent Predictor over the same
// chains and inventory; results (predictions and observed failures) arrive
// on Results.
func NewManager(chains []core.FailureChain, inventory []core.Template, opts Options, workers int) (*Manager, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := &Manager{
		results: make(chan Output, 256),
		// Worker in-channels buffer up to 512 events each, and every queued
		// batch pins a shell: when submitters outrun the scan workers the
		// whole window is in flight at once. Size the freelist for that
		// worst case (slots are one pointer each) or steady-state blast
		// ingest churns a fresh shell per dispatch.
		batchFree:   make(chan *eventBatch, (512+4)*workers),
		builderFree: make(chan *batchBuilder, 4),
	}
	for i := 0; i < workers; i++ {
		p, err := New(chains, inventory, opts)
		if err != nil {
			return nil, fmt.Errorf("predictor: manager worker %d: %w", i, err)
		}
		w := &managerWorker{in: make(chan managerEvent, 512), pred: p}
		m.workers = append(m.workers, w)
		m.wg.Add(1)
		go m.run(w)
	}
	m.fpHex = fmt.Sprintf("%016x", m.workers[0].pred.fingerprint)
	return m, nil
}

// Fingerprint returns the model fingerprint (chains + inventory + options).
func (m *Manager) Fingerprint() uint64 { return m.workers[0].pred.fingerprint }

// FingerprintHex returns the fingerprint in the canonical 16-hex-digit form
// used by the model registry, /statusz and Output.Model.
func (m *Manager) FingerprintHex() string { return m.fpHex }

// RulesFingerprint returns the automaton fingerprint (rule phrase sequences +
// factoring mode) — the key that decides whether parse stacks can migrate
// into another model (see AdoptState).
func (m *Manager) RulesFingerprint() uint64 { return m.workers[0].pred.rulesFingerprint }

//aarohi:hotpath
func (m *Manager) run(w *managerWorker) {
	defer m.wg.Done()
	var outBuf []Output // reused across batches; grows to the high-water mark
	for ev := range w.in {
		if ev.flush != nil {
			// Barrier marker: forward it through the FIFO results channel.
			// When the consumer acks it, every output this worker emitted
			// before the marker has been received.
			m.results <- Output{flush: ev.flush}
			continue
		}
		if ev.batch != nil {
			outBuf = m.runBatch(w, ev.batch, outBuf)
			continue
		}
		w.mu.Lock()
		var out Output
		if ev.msg != "" {
			id, ok := w.pred.Scanner().Scan(ev.msg)
			w.pred.linesScanned++
			if !ok {
				w.pred.discarded++
				w.mu.Unlock()
				continue
			}
			w.pred.tokens++
			ev.tok.Phrase = id
			out = w.pred.processToken(ev.tok)
		} else if ev.scanned {
			w.pred.linesScanned++
			w.pred.tokens++
			out = w.pred.processToken(ev.tok)
		} else {
			out = w.pred.ProcessToken(ev.tok)
		}
		w.mu.Unlock()
		if out.Prediction != nil || out.Failure != nil {
			out.Model = m.fpHex
			m.results <- out
		}
	}
}

// runBatch processes one delivered batch exactly as the per-line loop would —
// worker-side scan, identical counter updates, processToken per match — but
// holds w.mu once for the whole group and defers result sends until the lock
// is released (Stats callers are never blocked behind a full results channel).
// Returns the output buffer so its capacity survives to the next batch.
//
//aarohi:hotpath
func (m *Manager) runBatch(w *managerWorker, eb *eventBatch, outBuf []Output) []Output {
	outs := outBuf[:0]
	w.mu.Lock()
	for i := range eb.entries {
		e := &eb.entries[i]
		id, ok := w.pred.Scanner().Scan(e.msg)
		w.pred.linesScanned++
		if !ok {
			w.pred.discarded++
			continue
		}
		w.pred.tokens++
		e.tok.Phrase = id
		out := w.pred.processToken(e.tok)
		if out.Prediction != nil || out.Failure != nil {
			out.Model = m.fpHex
			outs = append(outs, out)
		}
	}
	w.mu.Unlock()
	m.putBatch(eb)
	for i := range outs {
		m.results <- outs[i]
		outs[i] = Output{} // drop the Prediction/Failure pointers we retain
	}
	return outs[:0]
}

// Results delivers predictions and observed failures. Close arranges for it
// to be closed once every pending event has drained through the workers —
// which may happen after Close has already returned, so consume with range
// rather than assuming the channel is closed when Close returns.
func (m *Manager) Results() <-chan Output { return m.results }

//aarohi:hotpath
func (m *Manager) workerFor(node string) *managerWorker {
	return m.workers[fnvIndex(node, len(m.workers))]
}

// fnvIndex shards key with inlined FNV-1a: hash.Hash32 would cost an
// interface allocation per line, and []byte(node) a copy.
//
//aarohi:hotpath
func fnvIndex[T ~string | ~[]byte](key T, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// SetHeartbeat registers fn to observe the (node, timestamp) of every line
// ProcessLine/ProcessLineBytes successfully parses. fn must be safe for
// concurrent calls (the ingest paths are); nil clears the hook. The node
// string may alias ingest buffers — observers must copy it if they retain it.
func (m *Manager) SetHeartbeat(fn func(node string, ts time.Time)) {
	if fn == nil {
		m.heartbeat.Store(nil)
		return
	}
	m.heartbeat.Store(&fn)
}

// ProcessLine routes one raw log line to its node's worker. Scanning happens
// inside the worker, in parallel across shards. Safe for concurrent use;
// returns ErrClosed after Close.
//
//aarohi:hotpath
func (m *Manager) ProcessLine(line string) error {
	ts, node, msg, err := lexgen.ParseLine(line)
	if err != nil {
		return err
	}
	if hb := m.heartbeat.Load(); hb != nil {
		(*hb)(node, ts)
	}
	return m.send(m.workerFor(node), managerEvent{
		tok: core.Token{Time: ts, Node: node},
		msg: msg,
	})
}

// ProcessLineBatch routes a group of raw log lines in one pass: lines are
// parsed and heartbeat-observed caller-side, scattered into per-shard batches
// by the same per-node hash ProcessLine uses, and delivered with one channel
// send per shard instead of one per line. Scanning still happens inside the
// worker, so the outputs, counters and Stats are exactly those of calling
// ProcessLine on each parseable line in order.
//
// Malformed lines are skipped and counted in parseErrs (the per-line path
// reports them one error at a time; a batch reports how many). After Close
// the whole batch is rejected with ErrClosed and nothing is enqueued —
// matching the per-line path, where every post-Close call fails. Lines of one
// batch reach each node's worker in slice order; ordering across concurrent
// callers is unspecified, as with ProcessLine. Safe for concurrent use.
//
//aarohi:hotpath
func (m *Manager) ProcessLineBatch(lines []string) (parseErrs int, err error) {
	if len(lines) == 0 {
		return 0, nil
	}
	b := m.getBuilder()
	hb := m.heartbeat.Load()
	n := 0
	for _, line := range lines {
		ts, node, msg, perr := lexgen.ParseLine(line)
		if perr != nil {
			parseErrs++
			continue
		}
		if hb != nil {
			(*hb)(node, ts)
		}
		wi := fnvIndex(node, len(m.workers))
		eb := b.shards[wi]
		if eb == nil {
			eb = m.getBatch()
			b.shards[wi] = eb
		}
		eb.entries = append(eb.entries, batchEntry{tok: core.Token{Time: ts, Node: node}, msg: msg})
		n++
	}
	if n == 0 {
		m.putBuilder(b)
		return parseErrs, nil
	}
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		for i, eb := range b.shards {
			if eb != nil {
				b.shards[i] = nil
				m.putBatch(eb)
			}
		}
		m.putBuilder(b)
		return parseErrs, ErrClosed
	}
	// Count the whole group before the first enqueue, mirroring send: inside
	// the RLock with closed == false delivery is guaranteed, and Accepted()
	// never trails processed.
	m.accepted.Add(uint64(n))
	for i, eb := range b.shards {
		if eb == nil {
			continue
		}
		b.shards[i] = nil
		//aarohi:allow lockblock worker queues are buffered and drained until Close; the RLock only excludes Close's swap, which waits for senders first
		m.workers[i].in <- managerEvent{batch: eb}
	}
	m.mu.RUnlock()
	m.putBuilder(b)
	return parseErrs, nil
}

// getBatch / putBatch / getBuilder / putBuilder are the freelist cold+recycle
// paths; the steady state of each is a single channel operation on a concrete
// pointer type.

func (m *Manager) getBatch() *eventBatch {
	select {
	case eb := <-m.batchFree:
		return eb
	default:
		return &eventBatch{}
	}
}

func (m *Manager) putBatch(eb *eventBatch) {
	clear(eb.entries) // drop node/msg string references before pooling
	eb.entries = eb.entries[:0]
	select {
	case m.batchFree <- eb:
	default:
	}
}

func (m *Manager) getBuilder() *batchBuilder {
	select {
	case b := <-m.builderFree:
		return b
	default:
		return &batchBuilder{shards: make([]*eventBatch, len(m.workers))}
	}
}

func (m *Manager) putBuilder(b *batchBuilder) {
	select {
	case m.builderFree <- b:
	default:
	}
}

// ProcessLineBytes routes one raw log line held in a reusable byte buffer —
// the WAL-replay shape, where every record is decoded into the same scratch
// slice. The buffer may be reused as soon as the call returns, so the
// message is scanned here rather than in the worker, and only the node name
// survives (deduplicated through a bounded intern table: steady state is
// zero allocations per line). Benign lines are counted exactly as the
// worker-side scan would count them (accepted, scanned, discarded) but are
// never enqueued — ok=false reports the drop, and Stats agree with what
// ProcessLine would have produced. Safe for concurrent use; returns
// ErrClosed after Close.
//
//aarohi:hotpath
func (m *Manager) ProcessLineBytes(line []byte) (ok bool, err error) {
	ts, node, msg, err := lexgen.ParseLineBytes(line)
	if err != nil {
		return false, err
	}
	if hb := m.heartbeat.Load(); hb != nil {
		(*hb)(m.nodes.get(node), ts)
	}
	w := m.workers[fnvIndex(node, len(m.workers))]
	// Scanners are immutable after construction and identical across
	// workers; worker 0's serves as the shared classifier.
	id, matched := m.workers[0].pred.Scanner().ScanBytes(msg)
	if !matched {
		return false, m.noteDiscard(w)
	}
	return true, m.send(w, managerEvent{
		tok:     core.Token{Phrase: id, Time: ts, Node: m.nodes.get(node)},
		scanned: true,
	})
}

// noteDiscard applies the line counters for a benign line classified in the
// caller: it is "processed" the moment it is scanned, so the counters are
// settled synchronously and LinesScanned still reconciles with Accepted at
// drain.
//
//aarohi:hotpath
func (m *Manager) noteDiscard(w *managerWorker) error {
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return ErrClosed
	}
	m.accepted.Add(1)
	m.mu.RUnlock()
	w.mu.Lock()
	w.pred.linesScanned++
	w.pred.discarded++
	w.mu.Unlock()
	return nil
}

// ProcessToken routes one pre-scanned token to its node's worker. Safe for
// concurrent use; returns ErrClosed after Close.
//
//aarohi:hotpath
func (m *Manager) ProcessToken(tok core.Token) error {
	return m.send(m.workerFor(tok.Node), managerEvent{tok: tok})
}

// send enqueues an event while holding the read side of the close lock, so a
// concurrent Close can never close a worker channel mid-send.
func (m *Manager) send(w *managerWorker, ev managerEvent) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	// Count before enqueuing: once inside the RLock with closed == false the
	// event is guaranteed to be delivered, and counting first keeps the
	// invariant Accepted() >= processed at every instant (Stats readers
	// observe the two in that order).
	m.accepted.Add(1)
	//aarohi:allow lockblock worker queues are buffered and drained until Close; the RLock only excludes Close's swap, which waits for senders first
	w.in <- ev
	return nil
}

// Accepted returns the number of events Process* has successfully enqueued.
// Once Results has closed (all workers drained), Stats().LinesScanned equals
// Accepted() exactly — the invariant that no accepted event is lost or
// double-processed during shutdown.
func (m *Manager) Accepted() uint64 { return m.accepted.Load() }

// Flush is a full-pipeline barrier: it injects a marker into every worker
// queue and blocks until the Results consumer has acked all of them (via
// Output.Ack). On return, every event enqueued before the Flush call has
// been processed AND its output received by the consumer. The caller must
// ensure Results is being drained (the markers travel through it) and must
// not call Flush from the consumer goroutine itself. Returns ErrClosed after
// Close.
func (m *Manager) Flush() error {
	ack := make(chan struct{}, len(m.workers))
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return ErrClosed
	}
	for _, w := range m.workers {
		//aarohi:allow lockblock flush markers ride the same drained worker queues as events; see send
		w.in <- managerEvent{flush: ack}
	}
	m.mu.RUnlock()
	for range m.workers {
		<-ack
	}
	return nil
}

// Close stops the manager: subsequent Process* calls return ErrClosed, every
// already-enqueued event still drains through its worker, and Results is
// closed once that drain completes (possibly after Close returns). Close is
// idempotent — extra calls are no-ops. The caller should consume Results
// with range until it closes.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	for _, w := range m.workers {
		close(w.in)
	}
	go func() {
		m.wg.Wait()
		close(m.results)
	}()
}

// Stats aggregates the counters of every worker. Safe to call at any time —
// concurrently with Process* and Close — and returns a consistent per-worker
// snapshot (each worker is paused briefly between events while its counters
// are read).
func (m *Manager) Stats() Stats {
	var st Stats
	for _, w := range m.workers {
		w.mu.Lock()
		ws := w.pred.Stats()
		w.mu.Unlock()
		st.LinesScanned += ws.LinesScanned
		st.Tokens += ws.Tokens
		st.Discarded += ws.Discarded
		st.Nodes += ws.Nodes
		st.Parser.Tokens += ws.Parser.Tokens
		st.Parser.Irrelevant += ws.Parser.Irrelevant
		st.Parser.Consumed += ws.Parser.Consumed
		st.Parser.Skipped += ws.Parser.Skipped
		st.Parser.Interleaved += ws.Parser.Interleaved
		st.Parser.TimeoutResets += ws.Parser.TimeoutResets
		st.Parser.Matches += ws.Parser.Matches
	}
	return st
}
