package predictor

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Lifecycle and race coverage for the batch submission path. The serve-level
// equivalence suite proves batched output equals per-line output; these tests
// pin the Manager-level contract: whole-batch ErrClosed semantics, parse-error
// accounting, and freedom from races against Close, Flush and state hot-swap.

// TestManagerBatchMatchesPerLine: the same stream chunked into batches yields
// the same predictions and stats as per-line submission, and malformed lines
// are counted without poisoning the rest of their batch.
func TestManagerBatchMatchesPerLine(t *testing.T) {
	log := genLog(t, 9, 8, 4)
	chains, inv := log.Dialect.Chains(), log.Dialect.Inventory()
	lines := log.Lines()

	ref, err := NewManager(chains, inv, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	refKeys, refDone := drainManager(ref)
	for _, line := range lines {
		if err := ref.ProcessLine(line); err != nil {
			t.Fatal(err)
		}
	}
	ref.Close()
	<-refDone
	refStats := ref.Stats()

	for _, chunk := range []int{1, 7, 256} {
		m, err := NewManager(chains, inv, Options{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		keys, done := drainManager(m)
		var parseErrs int
		for i := 0; i < len(lines); i += chunk {
			end := i + chunk
			if end > len(lines) {
				end = len(lines)
			}
			// A malformed line rides along in one batch per chunk size; it
			// must be skipped and counted, not dropped silently or fatal.
			batch := append(append([]string(nil), lines[i:end]...), "not a log line")
			pe, err := m.ProcessLineBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			parseErrs += pe
			batch = batch[:len(batch)-1]
			pe, err = m.ProcessLineBatch(batch[:0])
			if pe != 0 || err != nil {
				t.Fatalf("empty batch = (%d, %v), want (0, nil)", pe, err)
			}
		}
		m.Close()
		<-done

		wantBad := (len(lines) + chunk - 1) / chunk
		if parseErrs != wantBad {
			t.Fatalf("chunk=%d: %d parse errors, want %d", chunk, parseErrs, wantBad)
		}
		got, want := sortedCopy(*keys), sortedCopy(*refKeys)
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: %d predictions, per-line %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk=%d: prediction %d differs: %s vs %s", chunk, i, got[i], want[i])
			}
		}
		st := m.Stats()
		if st.LinesScanned != refStats.LinesScanned || st.Tokens != refStats.Tokens {
			t.Fatalf("chunk=%d: stats diverge: %+v vs %+v", chunk, st, refStats)
		}
		if uint64(st.LinesScanned) != m.Accepted() {
			t.Fatalf("chunk=%d: LinesScanned %d != Accepted %d", chunk, st.LinesScanned, m.Accepted())
		}
	}
}

// TestManagerBatchErrClosed: a closed manager refuses the entire batch —
// no partial shard delivery, no accepted-count advance — matching the
// per-line ErrClosed contract.
func TestManagerBatchErrClosed(t *testing.T) {
	log := genLog(t, 11, 4, 2)
	m, err := NewManager(log.Dialect.Chains(), log.Dialect.Inventory(), Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	lines := log.Lines()
	if _, err := m.ProcessLineBatch(lines[:8]); err != nil {
		t.Fatal(err)
	}
	before := m.Accepted()
	m.Close()
	for range m.Results() {
	}
	pe, err := m.ProcessLineBatch(lines[8:24])
	if err != ErrClosed {
		t.Fatalf("ProcessLineBatch after Close = %v, want ErrClosed", err)
	}
	if pe != 0 {
		t.Fatalf("well-formed refused batch reported %d parse errors", pe)
	}
	if m.Accepted() != before {
		t.Fatalf("refused batch advanced Accepted from %d to %d", before, m.Accepted())
	}
	if st := m.Stats(); uint64(st.LinesScanned) != m.Accepted() {
		t.Fatalf("after close: LinesScanned %d != Accepted %d", st.LinesScanned, m.Accepted())
	}
}

// TestManagerConcurrentBatchClose hammers ProcessLineBatch from several
// goroutines while Close races in. Every batch either lands whole (counted
// by the sender) or is refused whole with ErrClosed; after the drain the
// processed count reconciles exactly with the accepted count.
func TestManagerConcurrentBatchClose(t *testing.T) {
	log := genLog(t, 23, 10, 4)
	lines := log.Lines()
	for trial := 0; trial < 4; trial++ {
		m, err := NewManager(log.Dialect.Chains(), log.Dialect.Inventory(), Options{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, done := drainManager(m)

		var sent atomic.Uint64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := g * 16; i < len(lines); i += 4 * 16 {
					end := i + 16
					if end > len(lines) {
						end = len(lines)
					}
					pe, err := m.ProcessLineBatch(lines[i:end])
					if err != nil {
						if err == ErrClosed {
							return
						}
						t.Errorf("ProcessLineBatch: %v", err)
						return
					}
					sent.Add(uint64(end - i - pe))
					if i%128 == 0 {
						m.Stats()
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			m.Close()
			m.Close()
		}()
		close(start)
		wg.Wait()
		<-done

		if st := m.Stats(); uint64(st.LinesScanned) != m.Accepted() || m.Accepted() != sent.Load() {
			t.Fatalf("trial %d: LinesScanned %d, Accepted %d, sent %d — must all agree after drain",
				trial, st.LinesScanned, m.Accepted(), sent.Load())
		}
	}
}

// TestManagerConcurrentBatchFlushAndSwap drives batch submitters against the
// two quiescing operations the serve daemon performs live: Flush barriers and
// ExportState/AdoptState hot-swaps. Nothing may race or deadlock, and the
// manager must keep accepting batches after every swap. Exact sent/processed
// reconciliation is NOT asserted across the race phase: AdoptState restores
// the counters captured at export time, so increments landing in the gap are
// overwritten by design — instead the quiet manager is checked for exact
// accounting on a final batch after the swaps settle.
func TestManagerConcurrentBatchFlushAndSwap(t *testing.T) {
	log := genLog(t, 29, 8, 3)
	lines := log.Lines()
	m, err := NewManager(log.Dialect.Chains(), log.Dialect.Inventory(), Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, done := drainManager(m)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := g * 8; i < len(lines); i += 3 * 8 {
				end := i + 8
				if end > len(lines) {
					end = len(lines)
				}
				if _, err := m.ProcessLineBatch(lines[i:end]); err != nil {
					t.Errorf("ProcessLineBatch: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 8; i++ {
			if err := m.Flush(); err != nil {
				t.Errorf("Flush: %v", err)
				return
			}
			// After the barrier everything accepted so far is processed;
			// submitters keep racing, so only >= holds here.
			if st := m.Stats(); uint64(st.LinesScanned) > m.Accepted() {
				t.Errorf("flush %d: LinesScanned %d exceeds Accepted %d", i, st.LinesScanned, m.Accepted())
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 4; i++ {
			st, err := m.ExportState()
			if err != nil {
				t.Errorf("ExportState: %v", err)
				return
			}
			if _, err := m.AdoptState(st); err != nil {
				t.Errorf("AdoptState: %v", err)
				return
			}
		}
	}()
	close(start)
	wg.Wait()

	// Swaps settled, stream quiet: the manager must still accept batches and
	// account for them exactly.
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	base := m.Stats().LinesScanned
	tail := lines[:24]
	pe, err := m.ProcessLineBatch(tail)
	if err != nil {
		t.Fatal(err)
	}
	if pe != 0 {
		t.Fatalf("post-swap batch reported %d parse errors on well-formed lines", pe)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.LinesScanned != base+len(tail) {
		t.Fatalf("post-swap batch: LinesScanned %d, want %d", st.LinesScanned, base+len(tail))
	}
	m.Close()
	<-done
}
