package predictor

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/loggen"
)

// predKey canonicalizes a prediction for set comparison.
func predKey(node, chain string, at time.Time) string {
	return fmt.Sprintf("%s/%s/%d", node, chain, at.UnixMilli())
}

func TestManagerMatchesSerialPredictor(t *testing.T) {
	log := genLog(t, 42, 12, 8)
	chains := log.Dialect.Chains()
	inv := log.Dialect.Inventory()

	// Serial reference.
	serial := newPredictor(t, log, Options{})
	serialPreds, serialFails := runLog(serial, log)

	for _, workers := range []int{1, 3, 8} {
		m, err := NewManager(chains, inv, Options{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		var fails int
		done := make(chan struct{})
		go func() {
			defer close(done)
			for out := range m.Results() {
				if out.Prediction != nil {
					got = append(got, predKey(out.Prediction.Node, out.Prediction.ChainName, out.Prediction.MatchedAt))
				}
				if out.Failure != nil {
					fails++
				}
			}
		}()
		for _, e := range log.Events {
			if err := m.ProcessToken(core.Token{Phrase: e.Phrase, Time: e.Time, Node: e.Node}); err != nil {
				t.Fatal(err)
			}
		}
		m.Close()
		<-done

		want := make([]string, 0, len(serialPreds))
		for _, pr := range serialPreds {
			want = append(want, predKey(pr.Node, pr.ChainName, pr.MatchedAt))
		}
		sort.Strings(got)
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d predictions, serial %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: prediction %d differs: %s vs %s", workers, i, got[i], want[i])
			}
		}
		if fails != len(serialFails) {
			t.Fatalf("workers=%d: %d failures, serial %d", workers, fails, len(serialFails))
		}
		st := m.Stats()
		sst := serial.Stats()
		if st.LinesScanned != sst.LinesScanned || st.Tokens != sst.Tokens ||
			st.Parser.Matches != sst.Parser.Matches {
			t.Fatalf("workers=%d: stats diverge: %+v vs %+v", workers, st, sst)
		}
	}
}

func TestManagerProcessLine(t *testing.T) {
	log := genLog(t, 7, 6, 3)
	m, err := NewManager(log.Dialect.Chains(), log.Dialect.Inventory(), Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	preds := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for out := range m.Results() {
			if out.Prediction != nil {
				preds++
			}
		}
	}()
	for _, line := range log.Lines() {
		if err := m.ProcessLine(line); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	<-done
	if preds == 0 {
		t.Fatal("no predictions through line interface")
	}
	if st := m.Stats(); st.LinesScanned != len(log.Events) {
		t.Fatalf("LinesScanned = %d, want %d", st.LinesScanned, len(log.Events))
	}
}

func TestManagerBadLine(t *testing.T) {
	m, err := NewManager(loggen.DialectXC30.Chains(), loggen.DialectXC30.Inventory(), Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.ProcessLine("not a log line"); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestManagerDefaultsWorkers(t *testing.T) {
	m, err := NewManager(loggen.DialectXC30.Chains(), loggen.DialectXC30.Inventory(), Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.workers) == 0 {
		t.Fatal("no workers with default count")
	}
	m.Close()
	for range m.Results() {
	}
}

func TestManagerCloseIdempotent(t *testing.T) {
	m, err := NewManager(loggen.DialectXC30.Chains(), loggen.DialectXC30.Inventory(), Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // must not panic on double-close of worker channels
	for range m.Results() {
	}
	m.Close() // and still a no-op after the drain completes
	if err := m.ProcessToken(core.Token{Node: "c0-0c0s0n0"}); err != ErrClosed {
		t.Fatalf("ProcessToken after Close: err = %v, want ErrClosed", err)
	}
	if err := m.ProcessLine("2015-03-14T04:58:57.640Z c0-0c0s0n0 hello"); err != ErrClosed {
		t.Fatalf("ProcessLine after Close: err = %v, want ErrClosed", err)
	}
}

// TestManagerConcurrentProcessClose hammers ProcessLine/ProcessToken/Stats
// from many goroutines while Close races in — run under -race this covers the
// shutdown path of the serve daemon. Lines routed after Close must fail with
// ErrClosed instead of panicking on a closed channel; everything accepted
// before Close must drain to Results.
func TestManagerConcurrentProcessClose(t *testing.T) {
	log := genLog(t, 21, 10, 4)
	lines := log.Lines()
	for trial := 0; trial < 4; trial++ {
		m, err := NewManager(log.Dialect.Chains(), log.Dialect.Inventory(), Options{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		drained := make(chan int)
		go func() {
			n := 0
			for range m.Results() {
				n++
			}
			drained <- n
		}()

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := g; i < len(lines); i += 4 {
					if err := m.ProcessLine(lines[i]); err != nil {
						if err == ErrClosed {
							return
						}
						t.Errorf("ProcessLine: %v", err)
						return
					}
					if i%64 == 0 {
						m.Stats() // live stats must be race-free
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			// Close partway through the stream, concurrently with senders.
			m.Close()
			m.Close()
		}()
		close(start)
		wg.Wait()
		<-drained
		m.Stats() // and after the drain too
	}
}

func BenchmarkManagerThroughput(b *testing.B) {
	log, err := loggen.Generate(loggen.Config{
		Dialect: loggen.DialectXC30, Seed: 4, Duration: 2 * time.Hour,
		Nodes: 32, Failures: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	lines := log.Lines()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := NewManager(log.Dialect.Chains(), log.Dialect.Inventory(), Options{}, workers)
				if err != nil {
					b.Fatal(err)
				}
				done := make(chan struct{})
				go func() {
					defer close(done)
					for range m.Results() {
					}
				}()
				for _, line := range lines {
					if err := m.ProcessLine(line); err != nil {
						b.Fatal(err)
					}
				}
				m.Close()
				<-done
			}
			b.SetBytes(int64(len(lines)))
		})
	}
}

// TestManagerHeartbeat verifies the liveness hook: every successfully parsed
// line — benign or not — fires the callback with its node and timestamp, on
// both the string and byte-slice ingest paths, and a nil store clears it.
func TestManagerHeartbeat(t *testing.T) {
	log := genLog(t, 13, 5, 2)
	m, err := NewManager(log.Dialect.Chains(), log.Dialect.Inventory(), Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range m.Results() {
		}
	}()

	var mu sync.Mutex
	beats := 0
	nodes := map[string]int{}
	var last time.Time
	m.SetHeartbeat(func(node string, ts time.Time) {
		mu.Lock()
		beats++
		nodes[node]++
		if ts.After(last) {
			last = ts
		}
		mu.Unlock()
	})

	lines := log.Lines()
	half := len(lines) / 2
	for _, line := range lines[:half] {
		if err := m.ProcessLine(line); err != nil {
			t.Fatal(err)
		}
	}
	for _, line := range lines[half:] {
		if _, err := m.ProcessLineBytes([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ProcessLine("not a log line"); err == nil {
		t.Fatal("malformed line accepted")
	}

	mu.Lock()
	if beats != len(lines) {
		t.Fatalf("heartbeats = %d, want one per parsed line (%d)", beats, len(lines))
	}
	if len(nodes) != 5 {
		t.Fatalf("distinct heartbeat nodes = %d, want 5", len(nodes))
	}
	wantLast := log.Events[len(log.Events)-1].Time.Truncate(time.Millisecond)
	if !last.Equal(wantLast) {
		t.Fatalf("last heartbeat ts = %v, want %v", last, wantLast)
	}
	mu.Unlock()

	m.SetHeartbeat(nil)
	for _, line := range lines[:10] {
		if err := m.ProcessLine(line); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	if beats != len(lines) {
		t.Fatalf("cleared hook still fired: %d beats", beats)
	}
	mu.Unlock()

	m.Close()
	<-done
}
