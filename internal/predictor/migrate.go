package predictor

import (
	"fmt"

	"repro/internal/parser"
)

// Model migration: when the daemon hot-swaps one model for another, the new
// Manager adopts as much of the old Manager's state as the new model can
// soundly carry. Three tiers, decided per swap:
//
//  1. Identical model (same fingerprint): the full state restores verbatim.
//  2. Identical automaton (same rules fingerprint — e.g. only templates,
//     chain names or ΔT timeouts changed): every per-node parse stack is
//     still valid against the new LALR tables, so in-flight matches survive
//     the swap; the state is re-stamped and restored whole.
//  3. Different automaton: parse stacks from the old tables are meaningless
//     in the new ones. Each node gets a fresh driver at the initial state,
//     but its cumulative counters carry over so /statusz continuity holds;
//     nodes that were mid-match lose that partial parse (counted as Reset).

// MigrationReport says what AdoptState did with the old state.
type MigrationReport struct {
	// StateCarried is true when parse stacks migrated whole (tiers 1 and 2):
	// in-flight partial matches survived the swap.
	StateCarried bool
	// Nodes is the number of per-node drivers in the adopted state.
	Nodes int
	// Migrated counts nodes whose state (or, in tier 3, idle position)
	// carried into the new model unchanged.
	Migrated int
	// Reset counts nodes whose in-flight partial match had to be abandoned
	// because the automaton changed.
	Reset int
}

// AdoptState migrates a state exported from another (typically older)
// Manager into this one. It must be called before this manager processes any
// events. The manager is unchanged on error.
func (m *Manager) AdoptState(st State) (MigrationReport, error) {
	rep := MigrationReport{Nodes: len(st.Drivers)}
	own := m.workers[0].pred

	switch {
	case st.Fingerprint == own.fingerprint:
		// Tier 1: same model — a plain restore.
		if err := m.ImportState(st); err != nil {
			return MigrationReport{}, err
		}
		rep.StateCarried = true
		rep.Migrated = rep.Nodes
		return rep, nil

	case st.RulesFingerprint != 0 && st.RulesFingerprint == own.rulesFingerprint:
		// Tier 2: same compiled automaton — stacks remain valid; re-stamp
		// the state with the new model identity and restore whole.
		restamped := st
		restamped.Fingerprint = own.fingerprint
		restamped.RulesFingerprint = own.rulesFingerprint
		if err := m.ImportState(restamped); err != nil {
			return MigrationReport{}, err
		}
		rep.StateCarried = true
		rep.Migrated = rep.Nodes
		return rep, nil
	}

	// Tier 3: different automaton. Rebuild every node at the initial parse
	// state, preserving its cumulative counters; abandon in-flight matches.
	fresh := State{
		Fingerprint:      own.fingerprint,
		RulesFingerprint: own.rulesFingerprint,
		LinesScanned:     st.LinesScanned,
		Tokens:           st.Tokens,
		Discarded:        st.Discarded,
		Drivers:          make([]parser.DriverState, 0, len(st.Drivers)),
	}
	for _, ds := range st.Drivers {
		init := parser.New(own.rules, ds.Node).Snapshot()
		init.Stats = ds.Stats
		fresh.Drivers = append(fresh.Drivers, init)
		if ds.Active {
			rep.Reset++
		} else {
			rep.Migrated++
		}
	}
	if err := m.ImportState(fresh); err != nil {
		return MigrationReport{}, fmt.Errorf("predictor: migrating state: %w", err)
	}
	return rep, nil
}
