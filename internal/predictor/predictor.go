// Package predictor assembles the complete Aarohi online predictor: the
// generated scanner (internal/lexgen), the translated LALR rule set
// (internal/core) and one parse driver per node (internal/parser), matching
// the deployment model of the paper's Fig. 2 — "for each node in the
// cluster, we dedicate a predictor instance that processes messages of that
// node only".
//
// Failure chains learned in Phase 1 end with the terminal failed message
// (e.g. cb_node_unavailable). The predictor derives its parse rules from the
// *precursor* prefix of each chain — everything before the terminal phrase —
// so a prediction fires at the last precursor, minutes before the node
// actually stops responding; the terminal phrase itself is still recognized
// and surfaced as an ObservedFailure for lead-time accounting, exactly how
// the paper computes lead times ("from the timestamped node failed message
// in the test data to the event phrase at which the predictor flags match").
package predictor

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lexgen"
	"repro/internal/parser"
)

// Options configure predictor construction.
type Options struct {
	// Timeout overrides the default ΔT threshold (4 minutes).
	Timeout time.Duration
	// DisableFactoring keeps one production per chain (no subchain
	// non-terminals) — the Table IV P_FC form, for ablation.
	DisableFactoring bool
	// KeepTerminal includes the terminal failed message in the parse rules
	// (prediction then fires only when the node is already dead) — for
	// ablation of the lead-time design.
	KeepTerminal bool
}

// ObservedFailure reports the arrival of a terminal failed message — the
// ground-truth node failure.
type ObservedFailure struct {
	Node   string
	Time   time.Time
	Phrase core.PhraseID
}

// Output is the result of processing one event.
type Output struct {
	// Prediction is non-nil when a failure chain completed.
	Prediction *parser.Prediction
	// Failure is non-nil when a terminal failed message was observed.
	Failure *ObservedFailure
	// Model is the hex fingerprint of the model that produced this output,
	// stamped by Manager so consumers can attribute predictions across
	// hot-swaps. Empty for outputs from a bare Predictor.
	Model string `json:"model,omitempty"`

	// flush is non-nil on barrier markers injected by Manager.Flush; such
	// outputs carry no prediction or failure and must be acked by the
	// Results consumer.
	flush chan<- struct{}
}

// IsFlush reports whether this output is a Manager.Flush barrier marker
// rather than a prediction or failure. The Results consumer must call Ack on
// every marker it receives.
func (o Output) IsFlush() bool { return o.flush != nil }

// Ack acknowledges a flush barrier marker, unblocking the Flush caller once
// every worker's marker is acked. No-op on ordinary outputs.
func (o Output) Ack() {
	if o.flush != nil {
		o.flush <- struct{}{}
	}
}

// Predictor is the cluster-wide online predictor.
type Predictor struct {
	rules    *core.RuleSet
	scanner  *lexgen.Scanner
	chains   []core.FailureChain // original chains, including terminals
	terminal map[core.PhraseID]bool

	drivers map[string]*parser.Driver

	// fingerprint identifies the model (chains + inventory + options) so a
	// snapshot taken under one model is never restored under another.
	fingerprint uint64
	// rulesFingerprint identifies only the compiled parse automaton (the
	// rule-chain phrase sequences and factoring mode). Two models with equal
	// rulesFingerprint produce identical LALR tables, so parse stacks can
	// migrate between them even when templates or timeouts differ.
	rulesFingerprint uint64

	linesScanned int
	tokens       int
	discarded    int
}

// New builds a predictor from Phase-1 chains and the system's template
// inventory. Chains whose last phrase is a Failed-class template contribute
// their precursor prefix as the parse rule; chains ending in a non-terminal
// phrase are used whole.
func New(chains []core.FailureChain, inventory []core.Template, opts Options) (*Predictor, error) {
	if len(chains) == 0 {
		return nil, fmt.Errorf("predictor: no failure chains")
	}
	classOf := map[core.PhraseID]core.Class{}
	tplOf := map[core.PhraseID]core.Template{}
	for _, t := range inventory {
		classOf[t.ID] = t.Class
		tplOf[t.ID] = t
	}

	terminal := map[core.PhraseID]bool{}
	ruleChains := make([]core.FailureChain, 0, len(chains))
	seen := map[string]bool{}
	for _, fc := range chains {
		if len(fc.Phrases) == 0 {
			return nil, fmt.Errorf("predictor: chain %q is empty", fc.Name)
		}
		rule := fc
		last := fc.Phrases[len(fc.Phrases)-1]
		if classOf[last] == core.Failed {
			terminal[last] = true
			if !opts.KeepTerminal {
				if len(fc.Phrases) < 2 {
					return nil, fmt.Errorf("predictor: chain %q has no precursors before its failed message", fc.Name)
				}
				rule.Phrases = fc.Phrases[:len(fc.Phrases)-1]
				if len(fc.Gaps) == len(fc.Phrases)-1 {
					// Drop the final precursor→failure gap with the
					// terminal phrase so the gap arity stays valid.
					rule.Gaps = fc.Gaps[:len(fc.Gaps)-1]
				}
			}
		}
		key := phraseKey(rule.Phrases)
		if seen[key] {
			// Two chains with identical precursors (differing only in their
			// terminal message) collapse to one rule; the first wins.
			continue
		}
		seen[key] = true
		ruleChains = append(ruleChains, rule)
	}

	rs, err := core.TranslateFCs(ruleChains, core.Options{
		Timeout:          opts.Timeout,
		DisableFactoring: opts.DisableFactoring,
	})
	if err != nil {
		return nil, fmt.Errorf("predictor: translating chains: %w", err)
	}

	// The scanner recognizes every rule phrase plus the terminal failed
	// messages; everything else is discarded without tokenization.
	var scanTemplates []core.Template
	added := map[core.PhraseID]bool{}
	for _, t := range inventory {
		if (rs.Relevant(t.ID) || terminal[t.ID]) && !added[t.ID] {
			added[t.ID] = true
			scanTemplates = append(scanTemplates, t)
		}
	}
	for id := range terminal {
		if !added[id] {
			return nil, fmt.Errorf("predictor: terminal phrase %d missing from inventory", id)
		}
	}
	for _, fc := range ruleChains {
		for _, p := range fc.Phrases {
			if _, ok := tplOf[p]; !ok {
				return nil, fmt.Errorf("predictor: chain %q phrase %d missing from inventory", fc.Name, p)
			}
		}
	}
	scanner, err := lexgen.NewScanner(scanTemplates)
	if err != nil {
		return nil, fmt.Errorf("predictor: building scanner: %w", err)
	}

	return &Predictor{
		rules:            rs,
		scanner:          scanner,
		chains:           append([]core.FailureChain(nil), chains...),
		terminal:         terminal,
		drivers:          map[string]*parser.Driver{},
		fingerprint:      modelFingerprint(chains, inventory, opts),
		rulesFingerprint: rulesFingerprint(ruleChains, opts),
	}, nil
}

func phraseKey(ps []core.PhraseID) string {
	b := make([]byte, 0, len(ps)*4)
	for _, p := range ps {
		b = append(b, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	return string(b)
}

// RuleSet exposes the translated rules (for inspection and experiments).
func (p *Predictor) RuleSet() *core.RuleSet { return p.rules }

// Scanner exposes the generated scanner.
func (p *Predictor) Scanner() *lexgen.Scanner { return p.scanner }

// Chains returns the original Phase-1 chains (including terminal phrases).
func (p *Predictor) Chains() []core.FailureChain {
	return append([]core.FailureChain(nil), p.chains...)
}

// driver returns (creating if needed) the per-node parse driver.
func (p *Predictor) driver(node string) *parser.Driver {
	d, ok := p.drivers[node]
	if !ok {
		d = parser.New(p.rules, node)
		p.drivers[node] = d
	}
	return d
}

// ProcessLine scans one raw log line and advances the owning node's parse.
func (p *Predictor) ProcessLine(line string) (Output, error) {
	p.linesScanned++
	tok, ok, err := p.scanner.ScanLine(line)
	if err != nil {
		return Output{}, err
	}
	if !ok {
		p.discarded++
		return Output{}, nil
	}
	p.tokens++
	return p.processToken(tok), nil
}

// ProcessToken advances the owning node's parse with an already-scanned
// token (for callers that tokenize themselves, e.g. the cluster simulator).
// Tokens whose phrase is neither a rule phrase nor a terminal are counted as
// discarded, mirroring the scanner's filter.
func (p *Predictor) ProcessToken(tok core.Token) Output {
	p.linesScanned++
	if !p.rules.Relevant(tok.Phrase) && !p.terminal[tok.Phrase] {
		p.discarded++
		return Output{}
	}
	p.tokens++
	return p.processToken(tok)
}

func (p *Predictor) processToken(tok core.Token) Output {
	var out Output
	if p.terminal[tok.Phrase] {
		out.Failure = &ObservedFailure{Node: tok.Node, Time: tok.Time, Phrase: tok.Phrase}
		// Terminal phrases may also be rule phrases when KeepTerminal is
		// set; feed them through in that case.
		if !p.rules.Relevant(tok.Phrase) {
			return out
		}
	}
	out.Prediction = p.driver(tok.Node).Feed(tok)
	return out
}

// Stats aggregates scanner and driver activity.
type Stats struct {
	// LinesScanned is the number of lines/events processed.
	LinesScanned int
	// Tokens is the number of events that matched an FC-related template.
	Tokens int
	// Discarded is the number of events dropped during lexical scanning.
	Discarded int
	// Nodes is the number of per-node driver instances.
	Nodes int
	// Parser aggregates driver counters across nodes.
	Parser parser.Stats
}

// FCRelatedFraction returns the fraction of events that tokenized — the
// Fig. 12 quantity ("fraction of FC-related phrases eventually tokenized").
func (s Stats) FCRelatedFraction() float64 {
	if s.LinesScanned == 0 {
		return 0
	}
	return float64(s.Tokens) / float64(s.LinesScanned)
}

// Stats returns current aggregate counters.
func (p *Predictor) Stats() Stats {
	st := Stats{
		LinesScanned: p.linesScanned,
		Tokens:       p.tokens,
		Discarded:    p.discarded,
		Nodes:        len(p.drivers),
	}
	for _, d := range p.drivers {
		ds := d.Stats()
		st.Parser.Tokens += ds.Tokens
		st.Parser.Irrelevant += ds.Irrelevant
		st.Parser.Consumed += ds.Consumed
		st.Parser.Skipped += ds.Skipped
		st.Parser.Interleaved += ds.Interleaved
		st.Parser.TimeoutResets += ds.TimeoutResets
		st.Parser.Matches += ds.Matches
	}
	return st
}

// NodeStats returns the per-node driver counters.
func (p *Predictor) NodeStats() map[string]parser.Stats {
	out := make(map[string]parser.Stats, len(p.drivers))
	for node, d := range p.drivers {
		out[node] = d.Stats()
	}
	return out
}

// Reset clears every driver and counter (rules and scanner stay).
func (p *Predictor) Reset() {
	p.drivers = map[string]*parser.Driver{}
	p.linesScanned, p.tokens, p.discarded = 0, 0, 0
}

// Update re-generates the predictor from a new chain set — the paper's
// dynamic re-training path ("the predictor … may be dynamically updated if
// new training data becomes available"). The scanner and rule tables are
// rebuilt and swapped in atomically from the caller's perspective; in-flight
// partial matches are abandoned (their chains may no longer exist) and all
// counters keep accumulating. Not safe for concurrent use with Process*.
func (p *Predictor) Update(chains []core.FailureChain, inventory []core.Template, opts Options) error {
	fresh, err := New(chains, inventory, opts)
	if err != nil {
		return err
	}
	p.rules = fresh.rules
	p.scanner = fresh.scanner
	p.chains = fresh.chains
	p.terminal = fresh.terminal
	p.fingerprint = fresh.fingerprint
	p.rulesFingerprint = fresh.rulesFingerprint
	p.drivers = map[string]*parser.Driver{}
	return nil
}
