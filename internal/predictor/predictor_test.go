package predictor

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/loggen"
	"repro/internal/parser"
)

func genLog(t testing.TB, seed int64, nodes, failures int) *loggen.Log {
	t.Helper()
	log, err := loggen.Generate(loggen.Config{
		Dialect: loggen.DialectXC30, Seed: seed, Duration: 4 * time.Hour,
		Nodes: nodes, Failures: failures,
	})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func newPredictor(t testing.TB, log *loggen.Log, opts Options) *Predictor {
	t.Helper()
	p, err := New(log.Dialect.Chains(), log.Dialect.Inventory(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runLog drives the whole log through the predictor, returning predictions
// and observed failures.
func runLog(p *Predictor, log *loggen.Log) (preds []*parser.Prediction, fails []*ObservedFailure) {
	for _, e := range log.Events {
		out := p.ProcessToken(core.Token{Phrase: e.Phrase, Time: e.Time, Node: e.Node})
		if out.Prediction != nil {
			preds = append(preds, out.Prediction)
		}
		if out.Failure != nil {
			fails = append(fails, out.Failure)
		}
	}
	return preds, fails
}

func TestPredictsInjectedFailuresWithLeadTime(t *testing.T) {
	log := genLog(t, 42, 8, 6)
	p := newPredictor(t, log, Options{})
	preds, fails := runLog(p, log)

	if len(fails) != len(log.Failures) {
		t.Fatalf("observed %d terminal failures, injected %d", len(fails), len(log.Failures))
	}
	// Every injected failure must have a prediction on its node strictly
	// before the failure, with a minutes-scale lead time (the generator's
	// final gap is 1.5–4 minutes).
	for _, inj := range log.Failures {
		var best *parser.Prediction
		for _, pr := range preds {
			if pr.Node == inj.Node && !pr.MatchedAt.After(inj.FailTime) {
				if best == nil || pr.MatchedAt.After(best.MatchedAt) {
					best = pr
				}
			}
		}
		if best == nil {
			t.Errorf("failure %s/%s at %v: no prediction", inj.Node, inj.ChainName, inj.FailTime)
			continue
		}
		lead := inj.FailTime.Sub(best.MatchedAt)
		if lead < 60*time.Second || lead > 10*time.Minute {
			t.Errorf("failure %s/%s: lead time %v outside expected band", inj.Node, inj.ChainName, lead)
		}
	}
}

func TestNoFalsePositivesOnHealthyNodes(t *testing.T) {
	log := genLog(t, 7, 10, 3)
	p := newPredictor(t, log, Options{})
	preds, _ := runLog(p, log)
	failed := map[string]bool{}
	for _, inj := range log.Failures {
		failed[inj.Node] = true
	}
	for _, pr := range preds {
		if !failed[pr.Node] {
			t.Errorf("false positive on healthy node %s: %v", pr.Node, pr)
		}
	}
}

func TestProcessLineMatchesProcessToken(t *testing.T) {
	log := genLog(t, 11, 4, 2)
	p1 := newPredictor(t, log, Options{})
	p2 := newPredictor(t, log, Options{})

	var preds1 []*parser.Prediction
	for _, line := range log.Lines() {
		out, err := p1.ProcessLine(line)
		if err != nil {
			t.Fatal(err)
		}
		if out.Prediction != nil {
			preds1 = append(preds1, out.Prediction)
		}
	}
	preds2, _ := runLog(p2, log)
	if len(preds1) != len(preds2) {
		t.Fatalf("line-driven %d predictions, token-driven %d", len(preds1), len(preds2))
	}
	for i := range preds1 {
		if preds1[i].Node != preds2[i].Node || preds1[i].ChainIndex != preds2[i].ChainIndex {
			t.Errorf("prediction %d differs: %v vs %v", i, preds1[i], preds2[i])
		}
	}
	// Millisecond-precision timestamps survive the round trip.
	for i := range preds1 {
		if preds1[i].MatchedAt.UnixMilli() != preds2[i].MatchedAt.UnixMilli() {
			t.Errorf("prediction %d time differs", i)
		}
	}
}

func TestKeepTerminalDelaysPrediction(t *testing.T) {
	log := genLog(t, 13, 4, 2)
	normal := newPredictor(t, log, Options{})
	ablated := newPredictor(t, log, Options{KeepTerminal: true})
	predsN, _ := runLog(normal, log)
	predsA, _ := runLog(ablated, log)
	if len(predsN) == 0 || len(predsA) == 0 {
		t.Fatalf("predictions: normal=%d ablated=%d", len(predsN), len(predsA))
	}
	// With the terminal kept in the rule, the match lands at the failed
	// message itself: zero lead time.
	for _, inj := range log.Failures {
		for _, pr := range predsA {
			if pr.Node == inj.Node && pr.MatchedAt.Equal(inj.FailTime) {
				goto ok
			}
		}
		t.Errorf("ablated predictor missed failure on %s at the terminal message", inj.Node)
	ok:
	}
}

func TestStatsAndFraction(t *testing.T) {
	log := genLog(t, 17, 6, 4)
	p := newPredictor(t, log, Options{})
	runLog(p, log)
	st := p.Stats()
	if st.LinesScanned != len(log.Events) {
		t.Errorf("LinesScanned = %d, want %d", st.LinesScanned, len(log.Events))
	}
	if st.Tokens+st.Discarded != st.LinesScanned {
		t.Errorf("tokens %d + discarded %d != scanned %d", st.Tokens, st.Discarded, st.LinesScanned)
	}
	frac := st.FCRelatedFraction()
	if frac <= 0 || frac >= 1 {
		t.Errorf("FC-related fraction = %v, want within (0,1)", frac)
	}
	if st.Parser.Matches == 0 {
		t.Error("no matches recorded in parser stats")
	}
	if st.Nodes == 0 {
		t.Error("no per-node drivers")
	}
	if len(p.NodeStats()) != st.Nodes {
		t.Error("NodeStats size mismatch")
	}
}

func TestResetClearsCounters(t *testing.T) {
	log := genLog(t, 19, 4, 2)
	p := newPredictor(t, log, Options{})
	runLog(p, log)
	p.Reset()
	st := p.Stats()
	if st.LinesScanned != 0 || st.Tokens != 0 || st.Nodes != 0 {
		t.Errorf("Reset left counters: %+v", st)
	}
	// The predictor still works after reset.
	preds, _ := runLog(p, log)
	if len(preds) == 0 {
		t.Error("no predictions after Reset")
	}
}

func TestNewValidation(t *testing.T) {
	inv := loggen.DialectXC30.Inventory()
	chains := loggen.DialectXC30.Chains()
	if _, err := New(nil, inv, Options{}); err == nil {
		t.Error("no chains accepted")
	}
	if _, err := New([]core.FailureChain{{Name: "x"}}, inv, Options{}); err == nil {
		t.Error("empty chain accepted")
	}
	// A chain that is only a failed message has no precursors.
	failID := chains[0].Phrases[len(chains[0].Phrases)-1]
	if _, err := New([]core.FailureChain{{Name: "x", Phrases: []core.PhraseID{failID}}}, inv, Options{}); err == nil {
		t.Error("terminal-only chain accepted")
	}
	// A chain referencing a phrase absent from the inventory.
	if _, err := New([]core.FailureChain{{Name: "x", Phrases: []core.PhraseID{999999, failID}}}, inv, Options{}); err == nil {
		t.Error("unknown phrase accepted")
	}
}

func TestDuplicatePrecursorsCollapse(t *testing.T) {
	inv := loggen.DialectXC30.Inventory()
	base := loggen.DialectXC30.Chains()[0]
	dup := core.FailureChain{Name: "FCdup", Phrases: append([]core.PhraseID(nil), base.Phrases...)}
	dup.Name = "FCdup"
	p, err := New([]core.FailureChain{base, dup}, inv, Options{})
	if err != nil {
		t.Fatalf("duplicate precursors should collapse, got error: %v", err)
	}
	if n := len(p.RuleSet().Chains); n != 1 {
		t.Errorf("rule count = %d, want 1 after collapse", n)
	}
}

// Property: every prediction is justified — the predicted chain's precursor
// phrases occur, in order, as a subsequence of the node's preceding tokens,
// ending exactly at MatchedAt, with every consecutive consumed pair within
// the ΔT timeout. Checked over random token soups that freely interleave
// chain and noise phrases.
func TestPredictionJustificationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	d := loggen.DialectXC30
	chains := d.Chains()
	p, err := New(chains, d.Inventory(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pool: every phrase from every chain.
	var pool []core.PhraseID
	for _, fc := range chains {
		pool = append(pool, fc.Phrases...)
	}
	timeout := p.RuleSet().Timeout

	for iter := 0; iter < 30; iter++ {
		p.Reset()
		base := time.Date(2015, 3, 14, 0, 0, 0, 0, time.UTC)
		var stream []core.Token
		ts := base
		for i := 0; i < 400; i++ {
			gap := time.Duration(rng.Intn(30)) * time.Second
			if rng.Intn(40) == 0 {
				gap = 10 * time.Minute // occasional timeout-crossing silence
			}
			ts = ts.Add(gap)
			stream = append(stream, core.Token{
				Phrase: pool[rng.Intn(len(pool))], Time: ts, Node: "n1",
			})
		}
		for i, tok := range stream {
			out := p.ProcessToken(tok)
			pr := out.Prediction
			if pr == nil {
				continue
			}
			// Justify: precursors of the predicted chain must embed as a
			// subsequence of stream[:i+1] ending at stream[i], gaps between
			// consumed picks ≤ timeout.
			fc := chains[pr.ChainIndex]
			precursors := fc.Phrases[:len(fc.Phrases)-1]
			if !justified(stream[:i+1], precursors, timeout) {
				t.Fatalf("iter %d: prediction %v not justified by the stream", iter, pr)
			}
			if !pr.MatchedAt.Equal(stream[i].Time) {
				t.Fatalf("iter %d: MatchedAt %v != token time %v", iter, pr.MatchedAt, stream[i].Time)
			}
		}
	}
}

// justified checks by dynamic programming that seq embeds in stream as a
// subsequence whose last element is the final stream token, with every
// consecutive pick within timeout. (The driver's consumed tokens always form
// such an embedding; a greedy check is not exact for this constraint.)
func justified(stream []core.Token, seq []core.PhraseID, timeout time.Duration) bool {
	if len(stream) == 0 || len(seq) == 0 {
		return false
	}
	if stream[len(stream)-1].Phrase != seq[len(seq)-1] {
		return false
	}
	// reach[j] = stream positions where seq[:j+1] can end.
	reach := make([][]int, len(seq))
	for i, tok := range stream {
		for j := len(seq) - 1; j >= 0; j-- {
			if tok.Phrase != seq[j] {
				continue
			}
			if j == 0 {
				reach[0] = append(reach[0], i)
				continue
			}
			for _, p := range reach[j-1] {
				if p < i && tok.Time.Sub(stream[p].Time) <= timeout {
					reach[j] = append(reach[j], i)
					break
				}
			}
		}
	}
	last := reach[len(seq)-1]
	return len(last) > 0 && last[len(last)-1] == len(stream)-1
}

func TestUpdateSwapsRules(t *testing.T) {
	log := genLog(t, 23, 6, 3)
	chains := log.Dialect.Chains()
	inv := log.Dialect.Inventory()

	// Start with only the first chain; failures of other chains are missed.
	p, err := New(chains[:1], inv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	preds1, _ := runLog(p, log)

	// Hot-update to the full chain set ("new training data"): every failure
	// must now be predicted.
	if err := p.Update(chains, inv, Options{}); err != nil {
		t.Fatal(err)
	}
	preds2, _ := runLog(p, log)
	if len(preds2) <= len(preds1) && len(preds1) > 0 {
		t.Errorf("update did not widen coverage: %d → %d predictions", len(preds1), len(preds2))
	}
	predicted := map[string]bool{}
	for _, pr := range preds2 {
		predicted[pr.Node] = true
	}
	for _, inj := range log.Failures {
		if !predicted[inj.Node] {
			t.Errorf("post-update miss on %s/%s", inj.Node, inj.ChainName)
		}
	}
	// Partial matches are abandoned across an update.
	p.Reset()
	spec := log.Dialect.ChainSpecs()[0]
	half := chains[0].Phrases[:3]
	base := time.Date(2015, 3, 14, 0, 0, 0, 0, time.UTC)
	for i, ph := range half {
		p.ProcessToken(core.Token{Phrase: ph, Time: base.Add(time.Duration(i) * time.Second), Node: "n1"})
	}
	if err := p.Update(chains, inv, Options{}); err != nil {
		t.Fatal(err)
	}
	// Completing the remainder alone must not match.
	rest := chains[0].Phrases[3 : len(chains[0].Phrases)-1]
	for i, ph := range rest {
		out := p.ProcessToken(core.Token{Phrase: ph, Time: base.Add(time.Duration(10+i) * time.Second), Node: "n1"})
		if out.Prediction != nil {
			t.Fatalf("stale partial match survived Update (chain %s)", spec.Name)
		}
	}
	// An invalid update reports an error and leaves the predictor usable.
	if err := p.Update(nil, inv, Options{}); err == nil {
		t.Error("empty update accepted")
	}
	if preds, _ := runLog(p, log); len(preds) == 0 {
		t.Error("predictor unusable after failed update")
	}
}

func TestCrossSystemPortability(t *testing.T) {
	// Port the XC30 predictor to XC40 via semantic re-mapping and verify it
	// predicts XC40 failures — the paper's adaptability claim.
	mapped, missing := loggen.MapChains(loggen.DialectXC30.Chains(), loggen.DialectXC30, loggen.DialectXC40)
	if len(missing) != 0 {
		t.Fatalf("unmappable chains: %v", missing)
	}
	p, err := New(mapped, loggen.DialectXC40.Inventory(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	log, err := loggen.Generate(loggen.Config{
		Dialect: loggen.DialectXC40, Seed: 5, Duration: 3 * time.Hour, Nodes: 6, Failures: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	preds, _ := runLog(p, log)
	predicted := map[string]bool{}
	for _, pr := range preds {
		predicted[pr.Node] = true
	}
	for _, inj := range log.Failures {
		if !predicted[inj.Node] {
			t.Errorf("ported predictor missed failure on %s", inj.Node)
		}
	}
}
