package predictor

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/parser"
)

// Checkpoint support for the daemon's crash recovery: the complete mutable
// state of a Predictor — and, via a quiesce barrier, of a sharded Manager —
// can be serialized and later restored into a freshly built instance over
// the same model, resuming every in-flight parse exactly where it stopped.

// State is the serializable mutable state of a Predictor. It is plain data:
// the rules, scanner and tables are NOT captured (they are deterministic
// functions of the model inputs) — only a fingerprint of the model, so a
// restore into a predictor built from different chains or templates fails
// loudly instead of resuming garbage parses.
type State struct {
	// Fingerprint identifies the model (chains + inventory + options) the
	// state was captured under.
	Fingerprint uint64
	// RulesFingerprint identifies the compiled parse automaton alone. States
	// captured under one model can migrate their parse stacks into another
	// model with the same RulesFingerprint (see Manager.AdoptState). Zero in
	// snapshots written before this field existed.
	RulesFingerprint uint64
	// LinesScanned, Tokens, Discarded are the scanner-level counters.
	LinesScanned int
	Tokens       int
	Discarded    int
	// Drivers holds every per-node parse driver, sorted by node.
	Drivers []parser.DriverState
}

// modelFingerprint hashes everything that determines online behavior:
// chains (names, phrase sequences, per-chain timeouts), the template
// inventory (IDs, patterns, classes), and the construction options.
func modelFingerprint(chains []core.FailureChain, inventory []core.Template, opts Options) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	num := func(v int64) {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	str := func(s string) {
		num(int64(len(s)))
		io.WriteString(h, s)
	}
	num(int64(len(chains)))
	for _, fc := range chains {
		str(fc.Name)
		num(int64(len(fc.Phrases)))
		for _, p := range fc.Phrases {
			num(int64(p))
		}
		num(int64(fc.Timeout))
	}
	num(int64(len(inventory)))
	for _, t := range inventory {
		num(int64(t.ID))
		str(t.Pattern)
		num(int64(t.Class))
	}
	num(int64(opts.Timeout))
	flags := int64(0)
	if opts.DisableFactoring {
		flags |= 1
	}
	if opts.KeepTerminal {
		flags |= 2
	}
	num(flags)
	return h.Sum64()
}

// rulesFingerprint hashes only what determines the compiled parse automaton:
// the rule chains' phrase sequences (in translation order) and the factoring
// mode. Template patterns, chain names and ΔT timeouts are deliberately
// excluded — they change scanning or timing behavior but not the LALR tables
// a parse stack is validated against.
func rulesFingerprint(ruleChains []core.FailureChain, opts Options) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	num := func(v int64) {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	num(int64(len(ruleChains)))
	for _, fc := range ruleChains {
		num(int64(len(fc.Phrases)))
		for _, p := range fc.Phrases {
			num(int64(p))
		}
	}
	if opts.DisableFactoring {
		num(1)
	} else {
		num(0)
	}
	return h.Sum64()
}

// ModelFingerprint computes the fingerprint of a model (chains + inventory +
// options) without building a predictor — the identity key of the model
// registry.
func ModelFingerprint(chains []core.FailureChain, inventory []core.Template, opts Options) uint64 {
	return modelFingerprint(chains, inventory, opts)
}

// Fingerprint returns the model fingerprint (chains + inventory + options).
func (p *Predictor) Fingerprint() uint64 { return p.fingerprint }

// RulesFingerprint returns the automaton fingerprint (rule phrase sequences +
// factoring mode).
func (p *Predictor) RulesFingerprint() uint64 { return p.rulesFingerprint }

// Snapshot captures the predictor's complete mutable state.
func (p *Predictor) Snapshot() State {
	st := State{
		Fingerprint:      p.fingerprint,
		RulesFingerprint: p.rulesFingerprint,
		LinesScanned:     p.linesScanned,
		Tokens:           p.tokens,
		Discarded:        p.discarded,
		Drivers:          make([]parser.DriverState, 0, len(p.drivers)),
	}
	for _, d := range p.drivers {
		st.Drivers = append(st.Drivers, d.Snapshot())
	}
	sort.Slice(st.Drivers, func(i, j int) bool { return st.Drivers[i].Node < st.Drivers[j].Node })
	return st
}

// Restore replaces the predictor's mutable state with a previously captured
// one. The state must have been captured under the same model (fingerprint
// checked) and every driver stack is validated against the tables before
// anything is committed — the predictor is unchanged on error.
func (p *Predictor) Restore(st State) error {
	if st.Fingerprint != p.fingerprint {
		return fmt.Errorf("predictor: snapshot fingerprint %016x does not match model %016x (different chains, templates or options)",
			st.Fingerprint, p.fingerprint)
	}
	drivers := make(map[string]*parser.Driver, len(st.Drivers))
	for _, ds := range st.Drivers {
		if _, dup := drivers[ds.Node]; dup {
			return fmt.Errorf("predictor: snapshot holds node %q twice", ds.Node)
		}
		d := parser.New(p.rules, ds.Node)
		if err := d.Restore(ds); err != nil {
			return err
		}
		drivers[ds.Node] = d
	}
	p.drivers = drivers
	p.linesScanned = st.LinesScanned
	p.tokens = st.Tokens
	p.discarded = st.Discarded
	return nil
}

// snapshotVersion versions the gob payload written by Manager.Snapshot.
const snapshotVersion = 1

// managerState is the on-disk form of a Manager snapshot: worker shards are
// merged into one flat state, so a snapshot taken with one worker count
// restores cleanly into a manager with another (nodes re-shard on restore).
type managerState struct {
	Version int
	State   State
}

// ExportState quiesces the manager and returns its complete merged state. It
// first runs a Flush barrier — so every event accepted before the call is
// fully processed and its output received by the Results consumer — then
// captures all worker shards under their locks. The caller must pause
// producers for the duration if it needs the state to correspond to a known
// ingest offset, and must keep the Results consumer running (Flush's markers
// travel through it). Returns ErrClosed after Close.
func (m *Manager) ExportState() (State, error) {
	if err := m.Flush(); err != nil {
		return State{}, err
	}
	merged := State{
		Fingerprint:      m.workers[0].pred.fingerprint,
		RulesFingerprint: m.workers[0].pred.rulesFingerprint,
	}
	for _, mw := range m.workers {
		mw.mu.Lock()
		ws := mw.pred.Snapshot()
		mw.mu.Unlock()
		merged.LinesScanned += ws.LinesScanned
		merged.Tokens += ws.Tokens
		merged.Discarded += ws.Discarded
		merged.Drivers = append(merged.Drivers, ws.Drivers...)
	}
	sort.Slice(merged.Drivers, func(i, j int) bool { return merged.Drivers[i].Node < merged.Drivers[j].Node })
	return merged, nil
}

// Snapshot quiesces the manager (see ExportState) and serializes its complete
// state to w.
func (m *Manager) Snapshot(w io.Writer) error {
	merged, err := m.ExportState()
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(managerState{Version: snapshotVersion, State: merged}); err != nil {
		return fmt.Errorf("predictor: encoding snapshot: %w", err)
	}
	return nil
}

// DecodeSnapshotState reads a Manager.Snapshot stream without loading it into
// a manager, so a caller can inspect the state's fingerprint — e.g. to
// rebuild the matching model version — before choosing the manager to
// ImportState into.
func DecodeSnapshotState(r io.Reader) (State, error) {
	var ms managerState
	if err := gob.NewDecoder(r).Decode(&ms); err != nil {
		return State{}, fmt.Errorf("predictor: decoding snapshot: %w", err)
	}
	if ms.Version != snapshotVersion {
		return State{}, fmt.Errorf("predictor: unsupported snapshot version %d", ms.Version)
	}
	return ms.State, nil
}

// Restore loads a Manager.Snapshot stream into this manager, re-sharding
// nodes across the current worker count (which need not match the count the
// snapshot was taken with). It must be called before any events are
// processed; the fingerprint and every parse stack are validated before
// anything is committed.
func (m *Manager) Restore(r io.Reader) error {
	st, err := DecodeSnapshotState(r)
	if err != nil {
		return err
	}
	return m.ImportState(st)
}

// ImportState loads a previously exported (or migrated) state into this
// manager, re-sharding nodes across the current worker count. It must be
// called before any events are processed; the fingerprint and every parse
// stack are validated before anything is committed.
func (m *Manager) ImportState(st State) error {
	// Split the merged state into per-worker shards using the same hash
	// Process* routes with.
	shards := make([]State, len(m.workers))
	for i := range shards {
		shards[i].Fingerprint = st.Fingerprint
	}
	for _, ds := range st.Drivers {
		var wi int
		for i, w := range m.workers {
			if m.workerFor(ds.Node) == w {
				wi = i
				break
			}
		}
		shards[wi].Drivers = append(shards[wi].Drivers, ds)
	}
	// Aggregate counters live on worker 0; Stats() sums across workers, so
	// totals come out right regardless of the shard layout.
	shards[0].LinesScanned = st.LinesScanned
	shards[0].Tokens = st.Tokens
	shards[0].Discarded = st.Discarded

	// Validate every shard against a throwaway restore before committing
	// any worker, so a bad snapshot leaves the manager untouched.
	for i, mw := range m.workers {
		mw.mu.Lock()
		fresh := *mw.pred
		mw.mu.Unlock()
		fresh.drivers = map[string]*parser.Driver{}
		if err := fresh.Restore(shards[i]); err != nil {
			return err
		}
	}
	for i, mw := range m.workers {
		mw.mu.Lock()
		err := mw.pred.Restore(shards[i])
		mw.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
