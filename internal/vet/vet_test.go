package vet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// cleanModel is the quickstart FC3 model: six templates, one chain with
// Table III's gap annotations. It must vet clean.
func cleanModel() Model {
	return Model{
		Templates: []core.Template{
			{ID: 174, Pattern: "[Firmware Bug]: powernow_k8: *", Class: core.Erroneous},
			{ID: 140, Pattern: "DVS: verify_filesystem: *", Class: core.Unknown},
			{ID: 129, Pattern: "DVS: file_node_down: *", Class: core.Unknown},
			{ID: 175, Pattern: "Lustre: * cannot find peer *", Class: core.Unknown},
			{ID: 134, Pattern: "LNet: critical hardware error: *", Class: core.Erroneous},
			{ID: 127, Pattern: "cb_node_unavailable: *", Class: core.Failed},
		},
		Chains: []core.FailureChain{{
			Name:    "FC3",
			Phrases: []core.PhraseID{174, 140, 129, 175, 134, 127},
			Gaps: []time.Duration{
				8323 * time.Millisecond,
				80506 * time.Millisecond,
				24846 * time.Millisecond,
				22628 * time.Millisecond,
				130106 * time.Millisecond,
			},
		}},
	}
}

// want describes one finding that must be present in a report.
type want struct {
	check    string
	severity Severity
	subject  string // exact subject
	contains string // substring of the message
}

func TestRunGoldenFindings(t *testing.T) {
	cases := []struct {
		name  string
		model Model
		cfg   Config
		wants []want
	}{
		{
			name: "duplicate chain",
			model: Model{Chains: []core.FailureChain{
				{Name: "FC1", Phrases: []core.PhraseID{1, 2, 3}},
				{Name: "FC1-copy", Phrases: []core.PhraseID{1, 2, 3}},
			}},
			wants: []want{
				{check: "chains", severity: Error, subject: "FC1-copy", contains: "duplicate of chain FC1"},
				{check: "compile", severity: Error, subject: "rule set", contains: "identical phrase sequences"},
			},
		},
		{
			name: "prefix shadow",
			model: Model{Chains: []core.FailureChain{
				{Name: "FC-short", Phrases: []core.PhraseID{1, 2}},
				{Name: "FC-long", Phrases: []core.PhraseID{1, 2, 3}},
			}},
			wants: []want{
				{check: "chains", severity: Error, subject: "FC-long", contains: "can never complete"},
			},
		},
		{
			name: "orphan phrase and dead template",
			model: Model{
				Templates: []core.Template{
					{ID: 1, Pattern: "disk error *", Class: core.Erroneous},
					{ID: 2, Pattern: "node down *", Class: core.Failed},
					{ID: 7, Pattern: "fan failure *", Class: core.Erroneous},
				},
				Chains: []core.FailureChain{
					{Name: "FC1", Phrases: []core.PhraseID{1, 99, 2}},
				},
			},
			wants: []want{
				{check: "inventory", severity: Error, subject: "FC1", contains: "phrase 99 is not in the template inventory"},
				{check: "inventory", severity: Warning, subject: "template 7", contains: "dead template"},
			},
		},
		{
			name: "impossible deltat budget",
			model: Model{Chains: []core.FailureChain{
				{Name: "FC1", Phrases: []core.PhraseID{1, 2, 3},
					Gaps: []time.Duration{10 * time.Minute, 5 * time.Second}},
			}},
			wants: []want{
				{check: "deltat", severity: Error, subject: "FC1", contains: "can never complete under its own timing"},
			},
		},
		{
			name: "non-positive gap",
			model: Model{Chains: []core.FailureChain{
				{Name: "FC1", Phrases: []core.PhraseID{1, 2, 3},
					Gaps: []time.Duration{-time.Second, 5 * time.Second}},
			}},
			wants: []want{
				{check: "deltat", severity: Error, subject: "FC1", contains: "non-positive"},
			},
		},
		{
			name: "lead time below floor",
			model: Model{
				Templates: []core.Template{
					{ID: 1, Pattern: "disk error *", Class: core.Erroneous},
					{ID: 2, Pattern: "node down *", Class: core.Failed},
				},
				Chains: []core.FailureChain{
					{Name: "FC1", Phrases: []core.PhraseID{1, 2},
						Gaps: []time.Duration{2 * time.Second}},
				},
			},
			cfg: Config{MinLead: 10 * time.Second},
			wants: []want{
				{check: "deltat", severity: Warning, subject: "FC1", contains: "below the 10s floor"},
			},
		},
		{
			name: "conflicting grammar",
			model: Model{Chains: []core.FailureChain{
				{Name: "FC-cyc", Phrases: []core.PhraseID{1, 2, 1, 2, 1, 2}},
				{Name: "FC-mix", Phrases: []core.PhraseID{1, 2, 1, 3}},
			}},
			wants: []want{
				{check: "grammar", severity: Warning, contains: "conflict"},
			},
		},
		{
			name: "covered template",
			model: Model{
				Templates: []core.Template{
					{ID: 1, Pattern: "Lustre: *", Class: core.Erroneous},
					{ID: 2, Pattern: "Lustre: error *", Class: core.Erroneous},
				},
				Chains: []core.FailureChain{
					{Name: "FC1", Phrases: []core.PhraseID{1, 2}},
				},
			},
			wants: []want{
				{check: "overlap", severity: Error, subject: "template 2", contains: "can never produce a token"},
			},
		},
		{
			name: "partially overlapping templates",
			model: Model{
				Templates: []core.Template{
					{ID: 1, Pattern: "mce: * bank 4", Class: core.Erroneous},
					{ID: 2, Pattern: "mce: CPU0 *", Class: core.Erroneous},
				},
				Chains: []core.FailureChain{
					{Name: "FC1", Phrases: []core.PhraseID{1, 2}},
				},
			},
			wants: []want{
				{check: "overlap", severity: Warning, subject: "template 1", contains: "witness"},
			},
		},
		{
			name: "benign phrase in chain",
			model: Model{
				Templates: []core.Template{
					{ID: 1, Pattern: "heartbeat ok *", Class: core.Benign},
					{ID: 2, Pattern: "node down *", Class: core.Failed},
				},
				Chains: []core.FailureChain{
					{Name: "FC1", Phrases: []core.PhraseID{1, 2}},
				},
			},
			wants: []want{
				{check: "inventory", severity: Warning, subject: "FC1", contains: "classified benign"},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(tc.model, tc.cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, f := range rep.Findings {
				if f.Subject == "" {
					t.Errorf("finding %+v has empty subject", f)
				}
				if f.Message == "" {
					t.Errorf("finding %+v has empty message", f)
				}
			}
			for _, w := range tc.wants {
				if !hasFinding(rep, w) {
					t.Errorf("missing finding %+v in:\n%s", w, renderText(rep))
				}
			}
		})
	}
}

func hasFinding(rep *Report, w want) bool {
	for _, f := range rep.Findings {
		if f.Check != w.check || f.Severity != w.severity {
			continue
		}
		if w.subject != "" && f.Subject != w.subject {
			continue
		}
		if !strings.Contains(f.Message, w.contains) {
			continue
		}
		return true
	}
	return false
}

func renderText(rep *Report) string {
	var sb bytes.Buffer
	rep.WriteText(&sb)
	return sb.String()
}

func TestRunCleanModel(t *testing.T) {
	rep, err := Run(cleanModel(), Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("clean model produced findings:\n%s", renderText(rep))
	}
	if _, ok := rep.Max(); ok {
		t.Error("Max() reports a severity for an empty report")
	}
}

func TestRunFindingsSortedBySeverity(t *testing.T) {
	m := Model{
		Templates: []core.Template{
			{ID: 1, Pattern: "disk error *", Class: core.Erroneous},
			{ID: 7, Pattern: "fan failure *", Class: core.Erroneous},
		},
		Chains: []core.FailureChain{
			{Name: "FC1", Phrases: []core.PhraseID{1, 99}},
		},
	}
	rep, err := Run(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Findings); i++ {
		if rep.Findings[i].Severity > rep.Findings[i-1].Severity {
			t.Fatalf("findings not sorted by severity:\n%s", renderText(rep))
		}
	}
	if max, ok := rep.Max(); !ok || max != Error {
		t.Errorf("Max() = %v, %v; want Error, true", max, ok)
	}
}

func TestRunChecksFilter(t *testing.T) {
	m := Model{Chains: []core.FailureChain{
		{Name: "FC-short", Phrases: []core.PhraseID{1, 2}},
		{Name: "FC-long", Phrases: []core.PhraseID{1, 2, 3}},
	}}

	rep, err := Run(m, Config{Checks: []string{"deltat"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("deltat-only run still found:\n%s", renderText(rep))
	}

	if _, err := Run(m, Config{Checks: []string{"nonesuch"}}); err == nil {
		t.Error("unknown check name accepted")
	}

	if _, err := Run(Model{}, Config{}); err == nil {
		t.Error("empty model accepted")
	}
}

func TestSeverityJSON(t *testing.T) {
	b, err := json.Marshal(Finding{Check: "chains", Severity: Error, Subject: "FC1", Message: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"severity": "error"`) && !strings.Contains(string(b), `"severity":"error"`) {
		t.Errorf("severity not marshaled as string: %s", b)
	}
	var f Finding
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatal(err)
	}
	if f.Severity != Error {
		t.Errorf("round-trip severity = %v, want Error", f.Severity)
	}
}

func TestWriteJSONShape(t *testing.T) {
	rep, err := Run(Model{Chains: []core.FailureChain{
		{Name: "FC1", Phrases: []core.PhraseID{1, 2}, Gaps: []time.Duration{10 * time.Minute}},
	}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Findings []Finding `json:"findings"`
		Errors   int       `json:"errors"`
		Warnings int       `json:"warnings"`
		Infos    int       `json:"infos"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Errors == 0 || len(decoded.Findings) == 0 {
		t.Errorf("JSON report missing findings: %s", buf.String())
	}
}

func TestCompileHook(t *testing.T) {
	clean := cleanModel()
	hook := CompileHook(clean.Templates, Config{})
	if _, err := core.TranslateFCs(clean.Chains, core.Options{Vet: hook}); err != nil {
		t.Errorf("clean model rejected: %v", err)
	}

	bad := []core.FailureChain{
		{Name: "FC1", Phrases: []core.PhraseID{174, 140, 129, 175, 134, 127},
			Gaps: []time.Duration{time.Second, time.Second, time.Second, time.Second, time.Hour}},
	}
	if _, err := core.TranslateFCs(bad, core.Options{Vet: CompileHook(clean.Templates, Config{})}); err == nil {
		t.Error("model with impossible gap accepted by compile hook")
	} else if !strings.Contains(err.Error(), "vet rejected") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestAnalyzersRegistered(t *testing.T) {
	wantNames := []string{"chains", "deltat", "grammar", "inventory", "overlap"}
	got := Analyzers()
	if len(got) != len(wantNames) {
		t.Fatalf("Analyzers() = %d entries, want %d", len(got), len(wantNames))
	}
	for i, a := range got {
		if a.Name() != wantNames[i] {
			t.Errorf("Analyzers()[%d] = %s, want %s", i, a.Name(), wantNames[i])
		}
		if a.Doc() == "" {
			t.Errorf("analyzer %s has no doc", a.Name())
		}
	}
}
