package vet

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenReport covers every rendering feature: all three severities, a
// finding with related elements, and one without.
func goldenReport() *Report {
	return &Report{Findings: []Finding{
		{
			Check:    "chains",
			Severity: Error,
			Subject:  "chain fan-out",
			Message:  "phrase 134 never appears in the inventory",
			Related:  []string{"template 134", "template 17"},
		},
		{
			Check:    "deltat",
			Severity: Warning,
			Subject:  "chain dvs-timeout",
			Message:  "ΔT 30s is shorter than the chain's own span",
		},
		{
			Check:    "overlap",
			Severity: Info,
			Subject:  "template 201",
			Message:  "shadowed by template 7 on every input",
			Related:  []string{"template 7"},
		},
	}}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/vet -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.txt", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", buf.Bytes())
}

func TestWriteTextEmptyGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Report{}).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_empty.txt", buf.Bytes())
}

func TestWriteJSONEmptyGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Report{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_empty.json", buf.Bytes())
}
