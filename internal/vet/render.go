package vet

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteText renders the report for humans, one finding per line in
// "severity: [check] subject: message" form, followed by a summary line.
func (r *Report) WriteText(w io.Writer) error {
	for _, f := range r.Findings {
		line := fmt.Sprintf("%s: [%s] %s: %s", f.Severity, f.Check, f.Subject, f.Message)
		if len(f.Related) > 0 {
			line += fmt.Sprintf(" (related: %s)", strings.Join(f.Related, ", "))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d error(s), %d warning(s), %d info\n",
		r.Count(Error), r.Count(Warning), r.Count(Info))
	return err
}

// jsonReport is the stable machine-readable shape of a report.
type jsonReport struct {
	Findings []Finding `json:"findings"`
	Errors   int       `json:"errors"`
	Warnings int       `json:"warnings"`
	Infos    int       `json:"infos"`
}

// WriteJSON renders the report as indented JSON with severity counts.
func (r *Report) WriteJSON(w io.Writer) error {
	findings := r.Findings
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{
		Findings: findings,
		Errors:   r.Count(Error),
		Warnings: r.Count(Warning),
		Infos:    r.Count(Info),
	})
}
