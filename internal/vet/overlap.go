package vet

import (
	"fmt"
)

// overlapCheck (V3) detects template patterns whose languages collide, via
// product-DFA intersection over the per-template DFAs (rex.Set.Intersects /
// Covers). The scanner resolves a tie between equal-length matches in favor
// of the earlier template, so:
//
//   - an earlier template covering a later one (L(later) ⊆ L(earlier)) means
//     the later template can never win a match — an error, with a counter
//     check for the reverse direction;
//   - a partial overlap is a warning, carrying the shortest witness message
//     both templates match.
//
// Each finding includes a concrete witness string so the collision can be
// reproduced by feeding the witness to the scanner.
type overlapCheck struct{}

func init() { Register(overlapCheck{}) }

func (overlapCheck) Name() string { return "overlap" }
func (overlapCheck) Doc() string {
	return "template patterns that shadow or ambiguously overlap each other"
}

func (overlapCheck) Analyze(p *Pass) {
	if p.Scanner == nil {
		return
	}
	ts := p.Model.Templates
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			subjI := fmt.Sprintf("template %d", ts[i].ID)
			subjJ := fmt.Sprintf("template %d", ts[j].ID)
			if _, covers := p.Scanner.Covers(i, j); covers {
				witness, _ := p.Scanner.Intersects(i, j)
				p.Report(Finding{
					Check: "overlap", Severity: Error, Subject: subjJ,
					Message: fmt.Sprintf(
						"every message matching %q also matches the earlier template %d %q, which wins the tie: this template can never produce a token (witness: %q)",
						ts[j].Pattern, ts[i].ID, ts[i].Pattern, witness),
					Related: []string{subjI},
				})
				continue
			}
			if witness, ok := p.Scanner.Intersects(i, j); ok {
				p.Report(Finding{
					Check: "overlap", Severity: Warning, Subject: subjI,
					Message: fmt.Sprintf(
						"patterns %q and %q (template %d) both match some messages; the earlier template wins ties (witness: %q)",
						ts[i].Pattern, ts[j].Pattern, ts[j].ID, witness),
					Related: []string{subjJ},
				})
			}
		}
	}
}
