package vet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lalr"
)

// grammarCheck (V5) reports on the health of the compiled artifacts:
//
//   - LALR(1) conflicts of the factored grammar, mapped back to the
//     implicated failure chains via production tags (warning: TranslateFCs
//     silently recovers by disabling factoring, but the model author should
//     know the chain shapes defeat subchain sharing);
//   - grammar productions unreachable from the start symbol (warning);
//   - dead states in the combined scanner DFA — states from which no
//     accepting state is reachable (info: harmless, but indicates template
//     patterns with unsatisfiable tails).
type grammarCheck struct{}

func init() { Register(grammarCheck{}) }

func (grammarCheck) Name() string { return "grammar" }
func (grammarCheck) Doc() string {
	return "LALR conflicts mapped to chains, unreachable productions, dead DFA states"
}

func (grammarCheck) Analyze(p *Pass) {
	if rs := p.RuleSet; rs != nil {
		for _, c := range p.Conflicts {
			chains := implicatedChains(rs, c.Prods)
			subject := "grammar"
			if len(chains) > 0 {
				subject = chains[0]
			}
			msg := fmt.Sprintf("factored grammar has a %s conflict on %s in state %d (%s)",
				c.Kind, rs.Grammar.Name(c.Symbol), c.State, c.Detail)
			if p.Config.DisableFactoring {
				msg = fmt.Sprintf("grammar has a %s conflict on %s in state %d (%s)",
					c.Kind, rs.Grammar.Name(c.Symbol), c.State, c.Detail)
			} else {
				msg += "; TranslateFCs will fall back to the unfactored one-production-per-chain grammar"
			}
			p.Report(Finding{
				Check: "grammar", Severity: Warning, Subject: subject,
				Message: msg, Related: chains,
			})
		}
		for _, pi := range unreachableProds(rs.Grammar) {
			prod := rs.Grammar.Production(pi)
			p.Report(Finding{
				Check: "grammar", Severity: Warning,
				Subject: fmt.Sprintf("production %d", pi),
				Message: fmt.Sprintf("production %s is unreachable from the start symbol",
					rs.Grammar.Name(prod.Lhs)),
			})
		}
	}

	if p.Scanner != nil {
		if dead := p.Scanner.DeadStates(); len(dead) > 0 {
			p.Report(Finding{
				Check: "grammar", Severity: Info, Subject: "scanner DFA",
				Message: fmt.Sprintf("combined template DFA has %d dead state(s) (no accepting state reachable): %v", len(dead), dead),
			})
		}
	}
}

// implicatedChains maps conflict production indices to chain names,
// deduplicated and sorted. Top-level productions name their chain directly
// via the tag; a subchain production implicates every chain whose (possibly
// nested) factored rule uses its non-terminal.
func implicatedChains(rs *core.RuleSet, prods []int) []string {
	g := rs.Grammar

	// usesSym[i] is the set of symbols chain i's rule expands through,
	// following subchain definitions transitively.
	subRhs := map[lalr.Symbol][]lalr.Symbol{}
	for _, b := range rs.Subchains {
		subRhs[b.Sym] = b.Rhs
	}
	uses := func(rhs []lalr.Symbol, sym lalr.Symbol) bool {
		work := append([]lalr.Symbol(nil), rhs...)
		seen := map[lalr.Symbol]bool{}
		for len(work) > 0 {
			s := work[len(work)-1]
			work = work[:len(work)-1]
			if seen[s] {
				continue
			}
			seen[s] = true
			if s == sym {
				return true
			}
			work = append(work, subRhs[s]...)
		}
		return false
	}

	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, pi := range prods {
		if pi < 0 || pi >= g.NumProductions() {
			continue
		}
		prod := g.Production(pi)
		if prod.Tag >= 0 && prod.Tag < len(rs.Chains) {
			add(rs.Chains[prod.Tag].Name)
			continue
		}
		for ri, r := range rs.Rules {
			if uses(r.Rhs, prod.Lhs) {
				add(rs.Chains[ri].Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// unreachableProds returns the indices of user productions whose LHS cannot
// be derived from the start symbol.
func unreachableProds(g *lalr.Grammar) []int {
	reachable := map[lalr.Symbol]bool{g.Start(): true}
	for changed := true; changed; {
		changed = false
		for i := 0; i < g.NumProductions(); i++ {
			prod := g.Production(i)
			if !reachable[prod.Lhs] {
				continue
			}
			for _, s := range prod.Rhs {
				if !reachable[s] {
					reachable[s] = true
					changed = true
				}
			}
		}
	}
	var out []int
	for i := 0; i < g.NumProductions(); i++ {
		if !reachable[g.Production(i).Lhs] {
			out = append(out, i)
		}
	}
	return out
}

// Doc returns a rendered listing of the registered checks, for CLI -help.
func Doc() string {
	var sb strings.Builder
	for _, a := range Analyzers() {
		fmt.Fprintf(&sb, "  %-10s %s\n", a.Name(), a.Doc())
	}
	return sb.String()
}
