package vet

import (
	"fmt"

	"repro/internal/core"
)

// chainsCheck (V1) finds structurally defective chain sets: empty chains,
// duplicate names, duplicate phrase sequences, and chains whose phrase
// sequence is a strict prefix of a longer chain. The last is an error, not a
// style nit: the online driver accepts eagerly, so the moment the shorter
// chain completes it fires and resets the node's parse — the longer chain can
// never fire.
type chainsCheck struct{}

func init() { Register(chainsCheck{}) }

func (chainsCheck) Name() string { return "chains" }
func (chainsCheck) Doc() string {
	return "duplicate chains and prefix chains that pre-empt longer ones"
}

func (chainsCheck) Analyze(p *Pass) {
	chains := p.Model.Chains
	seenName := map[string]string{}
	seenSeq := map[string]string{}
	for i, fc := range chains {
		subject := fc.Name
		if subject == "" {
			subject = fmt.Sprintf("chain %d", i)
			p.Report(Finding{
				Check: "chains", Severity: Error, Subject: subject,
				Message: "chain has no name",
			})
		}
		if len(fc.Phrases) == 0 {
			p.Report(Finding{
				Check: "chains", Severity: Error, Subject: subject,
				Message: "chain has no phrases",
			})
			continue
		}
		if fc.Name != "" {
			if prev, dup := seenName[fc.Name]; dup {
				p.Report(Finding{
					Check: "chains", Severity: Error, Subject: subject,
					Message: "duplicate chain name", Related: []string{prev},
				})
			} else {
				seenName[fc.Name] = subject
			}
		}
		key := phraseKey(fc.Phrases)
		if prev, dup := seenSeq[key]; dup {
			p.Report(Finding{
				Check: "chains", Severity: Error, Subject: subject,
				Message: fmt.Sprintf("duplicate of chain %s: identical phrase sequence %v", prev, fc.Phrases),
				Related: []string{prev},
			})
		} else {
			seenSeq[key] = subject
		}
	}

	for _, pair := range core.PrefixChains(chains) {
		short, long := chains[pair[0]], chains[pair[1]]
		p.Report(Finding{
			Check: "chains", Severity: Error, Subject: long.Name,
			Message: fmt.Sprintf(
				"chain %s's phrases %v are a strict prefix of this chain's %v: eager acceptance fires %s first and resets the parse, so this chain can never complete",
				short.Name, short.Phrases, long.Phrases, short.Name),
			Related: []string{short.Name},
		})
	}
}

func phraseKey(ps []core.PhraseID) string {
	key := ""
	for _, p := range ps {
		key += fmt.Sprintf("%d,", p)
	}
	return key
}
