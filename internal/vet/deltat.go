package vet

import (
	"fmt"

	"repro/internal/core"
)

// deltatCheck (V4) validates the ΔT gap annotations against the timeout
// semantics of the online driver:
//
//   - a non-positive annotated gap is nonsense (error);
//   - the driver abandons a partial parse when one inter-token gap exceeds
//     the reset timeout (the laxest chain timeout, see RuleSet.MaxTimeout),
//     so a chain annotated with a gap above that bound can never complete
//     under its own typical timing (error) — and by pigeonhole, a cumulative
//     ΔT budget above (len-1)×bound implies such a gap;
//   - for chains ending in a Failed-class phrase, the expected lead time is
//     the final precursor→failure gap; when Config.MinLead is set, a lead
//     below it draws a warning (the prediction arrives too late to act on).
type deltatCheck struct{}

func init() { Register(deltatCheck{}) }

func (deltatCheck) Name() string { return "deltat" }
func (deltatCheck) Doc() string {
	return "ΔT gap annotations inconsistent with the reset timeout or lead-time floor"
}

func (deltatCheck) Analyze(p *Pass) {
	bound := p.ResetTimeout()
	for _, fc := range p.Model.Chains {
		if len(fc.Gaps) == 0 {
			continue
		}
		if len(fc.Gaps) != len(fc.Phrases)-1 {
			// buildRuleSet already rejects this (surfaced via the compile
			// finding); skip the per-gap analysis rather than index past it.
			continue
		}
		for i, gap := range fc.Gaps {
			if gap <= 0 {
				p.Report(Finding{
					Check: "deltat", Severity: Error, Subject: fc.Name,
					Message: fmt.Sprintf("gap %d (phrase %d → %d) is non-positive (%s)",
						i, fc.Phrases[i], fc.Phrases[i+1], gap),
				})
				continue
			}
			if gap > bound {
				p.Report(Finding{
					Check: "deltat", Severity: Error, Subject: fc.Name,
					Message: fmt.Sprintf(
						"gap %d (phrase %d → %d) is typically %s, but the driver resets any parse idle longer than %s: the chain can never complete under its own timing",
						i, fc.Phrases[i], fc.Phrases[i+1], gap, bound),
				})
			}
		}
		if p.Config.MinLead > 0 {
			last := fc.Phrases[len(fc.Phrases)-1]
			if cls, ok := p.Class(last); ok && cls == core.Failed {
				lead := fc.Gaps[len(fc.Gaps)-1]
				if lead > 0 && lead < p.Config.MinLead {
					p.Report(Finding{
						Check: "deltat", Severity: Warning, Subject: fc.Name,
						Message: fmt.Sprintf(
							"expected lead time %s (final precursor → failure gap) is below the %s floor: the prediction likely arrives too late to act on",
							lead, p.Config.MinLead),
					})
				}
			}
		}
	}
}
