package vet

import (
	"fmt"

	"repro/internal/core"
)

// inventoryCheck (V2) cross-references chains against the template
// inventory: chain phrases missing from the inventory are errors (the
// scanner can never emit their token, so the chain can never advance past
// them); non-benign inventory templates appearing in no chain are dead
// weight (warning); chains built on benign-classified phrases are suspect
// (warning), since Phase-1 training discards benign tokens and could never
// have mined them. It is a no-op when the model carries no inventory.
type inventoryCheck struct{}

func init() { Register(inventoryCheck{}) }

func (inventoryCheck) Name() string { return "inventory" }
func (inventoryCheck) Doc() string {
	return "dead templates and chain phrases missing from the inventory"
}

func (inventoryCheck) Analyze(p *Pass) {
	if len(p.Model.Templates) == 0 {
		return
	}

	used := map[core.PhraseID][]string{}
	for _, fc := range p.Model.Chains {
		reportedMissing := map[core.PhraseID]bool{}
		for _, ph := range fc.Phrases {
			used[ph] = append(used[ph], fc.Name)
			cls, known := p.Class(ph)
			switch {
			case !known:
				if reportedMissing[ph] {
					continue
				}
				reportedMissing[ph] = true
				p.Report(Finding{
					Check: "inventory", Severity: Error, Subject: fc.Name,
					Message: fmt.Sprintf("phrase %d is not in the template inventory: the scanner can never tokenize it, so the chain can never fire", ph),
				})
			case cls == core.Benign:
				p.Report(Finding{
					Check: "inventory", Severity: Warning, Subject: fc.Name,
					Message: fmt.Sprintf("phrase %d is classified benign: Phase-1 training discards benign tokens, so no trainer could have mined this chain — likely a misclassified template", ph),
				})
			}
		}
	}

	for _, t := range p.Model.Templates {
		if t.Class == core.Benign {
			continue
		}
		if len(used[t.ID]) == 0 {
			p.Report(Finding{
				Check: "inventory", Severity: Warning,
				Subject: fmt.Sprintf("template %d", t.ID),
				Message: fmt.Sprintf("%s template %q appears in no failure chain (dead template)", t.Class, t.Pattern),
			})
		}
	}
}
