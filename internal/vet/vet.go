// Package vet is a static-analysis pass over compiled failure-chain engines:
// the reproduction's analogue of `go vet` for Aarohi models. Given a model —
// the Phase-1 failure chains plus (optionally) the phrase-template inventory —
// it compiles the same artifacts the online predictor would (token list,
// scanner DFA, LALR(1) grammar) and runs a suite of analyzers over them:
//
//   - chains: duplicate chains, and chains whose phrase sequence is a strict
//     prefix of a longer chain (which eager acceptance pre-empts forever).
//   - inventory: dead templates (inventoried phrases in no chain) and orphan
//     phrases (chain phrases missing from the inventory).
//   - overlap: scanner-level template overlap, found by product-DFA
//     intersection with a concrete witness message for every collision.
//   - deltat: ΔT consistency — non-positive gap annotations, gaps the reset
//     timeout makes unsatisfiable, and lead times below a configured floor.
//   - grammar: LALR(1) conflicts mapped back to the implicated chains,
//     unreachable productions, and dead scanner-DFA states.
//
// The suite is exposed three ways: the aarohivet CLI, the opt-in
// core.Options.Vet compile hook (see CompileHook), and a warning pass in
// fctrain after mining.
package vet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lalr"
	"repro/internal/lexgen"
	"repro/internal/rex"
)

// Severity ranks findings. Errors indicate a model that cannot behave as
// intended (a chain that can never fire, a phrase that can never tokenize);
// warnings indicate likely mistakes; infos are observations.
type Severity int

const (
	// Info findings are observations with no behavioral impact.
	Info Severity = iota
	// Warning findings are likely mistakes that do not break the model.
	Warning
	// Error findings mean part of the model can never work as written.
	Error
)

// String returns the lower-case name used in renderings and JSON.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its string name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a severity from its string name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"info"`:
		*s = Info
	case `"warning"`:
		*s = Warning
	case `"error"`:
		*s = Error
	default:
		return fmt.Errorf("vet: unknown severity %s", b)
	}
	return nil
}

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Check names the analyzer that produced the finding.
	Check string `json:"check"`
	// Severity ranks the finding.
	Severity Severity `json:"severity"`
	// Subject identifies the model element at fault (a chain name, a
	// template "template 134", ...). Never empty.
	Subject string `json:"subject"`
	// Message explains the defect, including any witness.
	Message string `json:"message"`
	// Related names other implicated model elements.
	Related []string `json:"related,omitempty"`
}

// Model is the unit of analysis: the failure chains and, optionally, the
// phrase-template inventory they tokenize against. Inventory-dependent checks
// degrade gracefully when Templates is empty.
type Model struct {
	Chains    []core.FailureChain
	Templates []core.Template
}

// Config tunes the analysis.
type Config struct {
	// Timeout overrides the default per-gap reset timeout
	// (core.DefaultTimeout) when positive, mirroring core.Options.Timeout.
	Timeout time.Duration
	// MinLead, when positive, is the minimum acceptable predicted lead time:
	// chains whose final precursor→failure gap falls below it draw a
	// warning (a prediction that arrives too late to act on).
	MinLead time.Duration
	// DisableFactoring mirrors core.Options.DisableFactoring.
	DisableFactoring bool
	// Checks restricts the run to the named analyzers; empty runs all.
	Checks []string
}

// Pass carries the model and its compiled artifacts to each analyzer.
type Pass struct {
	Model  Model
	Config Config

	// RuleSet is the Algorithm-1 output (token list, rules, grammar; Tables
	// is nil — vet compiles only up to grammar construction). Nil when the
	// chains do not compile; analyzers must tolerate that.
	RuleSet *core.RuleSet
	// Conflicts are the LALR(1) conflicts of the unfactored-fallback-free
	// grammar (what TranslateFCs would silently paper over). Nil when the
	// chains do not compile.
	Conflicts []lalr.Conflict
	// Scanner is the combined template DFA, unminimized so dead states are
	// observable. Nil when the model has no templates or they do not
	// compile.
	Scanner *rex.Set

	classOf  map[core.PhraseID]core.Class
	tmplOf   map[core.PhraseID]core.Template
	findings []Finding
}

// Report records a finding.
func (p *Pass) Report(f Finding) { p.findings = append(p.findings, f) }

// Class returns the inventoried class of a phrase.
func (p *Pass) Class(id core.PhraseID) (core.Class, bool) {
	c, ok := p.classOf[id]
	return c, ok
}

// Template returns the inventoried template of a phrase.
func (p *Pass) Template(id core.PhraseID) (core.Template, bool) {
	t, ok := p.tmplOf[id]
	return t, ok
}

// ResetTimeout returns the per-gap bound the online driver enforces: the
// laxest applicable ΔT threshold across all chains (see
// core.RuleSet.MaxTimeout).
func (p *Pass) ResetTimeout() time.Duration {
	bound := core.DefaultTimeout
	if p.Config.Timeout > 0 {
		bound = p.Config.Timeout
	}
	for _, fc := range p.Model.Chains {
		if fc.Timeout > bound {
			bound = fc.Timeout
		}
	}
	return bound
}

// Analyzer is one vet check.
type Analyzer interface {
	// Name is the check's identifier (used in Finding.Check and -checks).
	Name() string
	// Doc is a one-line description.
	Doc() string
	// Analyze inspects the pass and reports findings.
	Analyze(p *Pass)
}

var registry = map[string]Analyzer{}

// Register adds an analyzer to the default suite. It panics on duplicate
// names; call it from package init functions.
func Register(a Analyzer) {
	if _, dup := registry[a.Name()]; dup {
		panic(fmt.Sprintf("vet: duplicate analyzer %q", a.Name()))
	}
	registry[a.Name()] = a
}

// Analyzers returns the registered suite sorted by name.
func Analyzers() []Analyzer {
	out := make([]Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Report is the outcome of a Run: all findings, ordered most severe first.
type Report struct {
	Findings []Finding `json:"findings"`
}

// Count returns the number of findings at exactly severity s.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == s {
			n++
		}
	}
	return n
}

// Max returns the highest severity present, and false when there are no
// findings.
func (r *Report) Max() (Severity, bool) {
	if len(r.Findings) == 0 {
		return Info, false
	}
	m := r.Findings[0].Severity
	for _, f := range r.Findings[1:] {
		if f.Severity > m {
			m = f.Severity
		}
	}
	return m, true
}

// Run executes the suite (or the subset named in cfg.Checks) over the model.
// It returns an error only for unusable input — an empty model or an unknown
// check name; model defects are findings, not errors.
func Run(m Model, cfg Config) (*Report, error) {
	if len(m.Chains) == 0 {
		return nil, fmt.Errorf("vet: model has no failure chains")
	}
	suite := Analyzers()
	if len(cfg.Checks) > 0 {
		var sel []Analyzer
		for _, name := range cfg.Checks {
			a, ok := registry[name]
			if !ok {
				return nil, fmt.Errorf("vet: unknown check %q (have %s)", name, strings.Join(checkNames(), ", "))
			}
			sel = append(sel, a)
		}
		suite = sel
	}

	p := &Pass{
		Model:   m,
		Config:  cfg,
		classOf: map[core.PhraseID]core.Class{},
		tmplOf:  map[core.PhraseID]core.Template{},
	}
	for _, t := range m.Templates {
		p.classOf[t.ID] = t.Class
		p.tmplOf[t.ID] = t
	}

	// Compile the grammar-side artifacts. A compile failure is itself an
	// error finding; chain-level analyzers still run and pinpoint the cause.
	rs, conflicts, err := core.GrammarConflicts(m.Chains, core.Options{
		Timeout:          cfg.Timeout,
		DisableFactoring: cfg.DisableFactoring,
	})
	if err != nil {
		p.Report(Finding{
			Check: "compile", Severity: Error, Subject: "rule set",
			Message: err.Error(),
		})
	} else {
		p.RuleSet = rs
		p.Conflicts = conflicts
	}

	// Compile the scanner-side artifact: the combined template DFA, without
	// minimization so dead states remain observable.
	if len(m.Templates) > 0 {
		patterns := make([]string, len(m.Templates))
		for i, t := range m.Templates {
			patterns[i] = lexgen.TemplatePattern(t.Pattern)
		}
		set, err := rex.CompileSet(patterns)
		if err != nil {
			p.Report(Finding{
				Check: "compile", Severity: Error, Subject: "scanner",
				Message: fmt.Sprintf("compiling template patterns: %v", err),
			})
		} else {
			p.Scanner = set
		}
	}

	for _, a := range suite {
		a.Analyze(p)
	}

	sort.SliceStable(p.findings, func(i, j int) bool {
		a, b := p.findings[i], p.findings[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Message < b.Message
	})
	return &Report{Findings: p.findings}, nil
}

func checkNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CompileHook adapts the vet suite to core.Options.Vet: the returned hook
// runs the full analysis against the rule set's chains plus the given
// inventory and rejects the compile when any error-severity finding is
// present.
func CompileHook(templates []core.Template, cfg Config) func(*core.RuleSet) error {
	return func(rs *core.RuleSet) error {
		rep, err := Run(Model{Chains: rs.Chains, Templates: templates}, cfg)
		if err != nil {
			return err
		}
		if n := rep.Count(Error); n > 0 {
			first := ""
			for _, f := range rep.Findings {
				if f.Severity == Error {
					first = fmt.Sprintf("[%s] %s: %s", f.Check, f.Subject, f.Message)
					break
				}
			}
			return fmt.Errorf("vet: %d error finding(s); first: %s", n, first)
		}
		return nil
	}
}
