package loggen

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lexgen"
)

func TestDialectInventories(t *testing.T) {
	for _, d := range []*Dialect{
		DialectXC30, DialectXE6, DialectXC40, DialectXC4030,
		DialectXK, DialectBGP, DialectCassandra, DialectHadoop,
	} {
		inv := d.Inventory()
		if len(inv) == 0 {
			t.Errorf("%s: empty inventory", d.Name)
		}
		seen := map[core.PhraseID]bool{}
		for _, tpl := range inv {
			if seen[tpl.ID] {
				t.Errorf("%s: duplicate phrase ID %d", d.Name, tpl.ID)
			}
			seen[tpl.ID] = true
			if tpl.Pattern == "" {
				t.Errorf("%s: phrase %d has empty pattern", d.Name, tpl.ID)
			}
		}
		// Chains resolve and end in a Failed phrase.
		for _, fc := range d.Chains() {
			if len(fc.Phrases) < 2 {
				t.Errorf("%s %s: too short", d.Name, fc.Name)
			}
			last := fc.Phrases[len(fc.Phrases)-1]
			found := false
			for _, tpl := range inv {
				if tpl.ID == last && tpl.Class == core.Failed {
					found = true
				}
			}
			if !found {
				t.Errorf("%s %s: does not end in a Failed phrase", d.Name, fc.Name)
			}
		}
		// Chains translate into a valid rule set.
		if len(d.Chains()) > 0 {
			if _, err := core.TranslateFCs(d.Chains(), core.Options{}); err != nil {
				t.Errorf("%s: TranslateFCs: %v", d.Name, err)
			}
		}
	}
}

func TestDialectIDRangesDisjoint(t *testing.T) {
	type span struct {
		name   string
		lo, hi core.PhraseID
	}
	var spans []span
	for _, d := range []*Dialect{
		DialectXC30, DialectXE6, DialectXC40, DialectXC4030,
		DialectXK, DialectBGP, DialectCassandra, DialectHadoop,
	} {
		lo, hi := core.PhraseID(1<<31-1), core.PhraseID(-1)
		for _, tpl := range d.Inventory() {
			if tpl.ID < lo {
				lo = tpl.ID
			}
			if tpl.ID > hi {
				hi = tpl.ID
			}
		}
		spans = append(spans, span{d.Name, lo, hi})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo <= spans[j].hi && spans[j].lo <= spans[i].hi {
				t.Errorf("ID ranges overlap: %s [%d,%d] vs %s [%d,%d]",
					spans[i].name, spans[i].lo, spans[i].hi, spans[j].name, spans[j].lo, spans[j].hi)
			}
		}
	}
}

func TestXCHasTableIIIChain(t *testing.T) {
	// FC1 of the XC dialect is Table III's chain: firmware bug → DVS verify
	// → DVS node down → Lustre peer → LNet HW error → node unavailable.
	chains := DialectXC30.Chains()
	if chains[0].Name != "FC1" || len(chains[0].Phrases) != 6 {
		t.Fatalf("FC1 = %+v", chains[0])
	}
	tpl, ok := DialectXC30.Template(EvNodeFailed)
	if !ok || !strings.HasPrefix(tpl.Pattern, "cb_node_unavailable") {
		t.Errorf("XC failed message = %+v", tpl)
	}
	// Headline 18-length chain exists.
	found := false
	for _, fc := range chains {
		if len(fc.Phrases) == 18 {
			found = true
		}
	}
	if !found {
		t.Error("XC dialect lacks an 18-phrase chain")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		Dialect: DialectXC30, Seed: 42, Duration: time.Hour, Nodes: 4,
		Failures: 2,
	}
	l1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1.Events) != len(l2.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(l1.Events), len(l2.Events))
	}
	for i := range l1.Events {
		if l1.Events[i] != l2.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, l1.Events[i], l2.Events[i])
		}
	}
	l3, err := Generate(Config{Dialect: DialectXC30, Seed: 43, Duration: time.Hour, Nodes: 4, Failures: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := len(l3.Events) == len(l1.Events)
	if same {
		diff := false
		for i := range l1.Events {
			if l1.Events[i] != l3.Events[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical logs")
	}
}

func TestGenerateValidation(t *testing.T) {
	base := Config{Dialect: DialectXC30, Duration: time.Hour, Nodes: 2}
	bad := []Config{
		{Duration: time.Hour, Nodes: 2},
		{Dialect: DialectXC30, Nodes: 2},
		{Dialect: DialectXC30, Duration: time.Hour},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Generate(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestGenerateEventsSortedAndInWindow(t *testing.T) {
	cfg := Config{Dialect: DialectXE6, Seed: 7, Duration: 2 * time.Hour, Nodes: 6, Failures: 3}
	log, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) == 0 {
		t.Fatal("no events")
	}
	start, _ := time.Parse(time.RFC3339, defaultStart)
	// Injected chains may spill somewhat past Duration (final gaps), allow
	// slack of the chain budget.
	hardEnd := start.Add(cfg.Duration + time.Hour)
	for i, e := range log.Events {
		if i > 0 && e.Time.Before(log.Events[i-1].Time) {
			t.Fatalf("events not sorted at %d", i)
		}
		if e.Time.Before(start) || e.Time.After(hardEnd) {
			t.Fatalf("event %d out of window: %v", i, e.Time)
		}
		if e.Node == "" || e.Message == "" || e.Phrase == 0 {
			t.Fatalf("incomplete event: %+v", e)
		}
	}
}

func TestInjectedFailuresGroundTruth(t *testing.T) {
	cfg := Config{Dialect: DialectXC40, Seed: 11, Duration: 3 * time.Hour, Nodes: 8, Failures: 5}
	log, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Failures) != 5 {
		t.Fatalf("failures = %d, want 5", len(log.Failures))
	}
	chains := log.Dialect.Chains()
	for _, inj := range log.Failures {
		if inj.FailTime.Before(inj.Start) {
			t.Errorf("failure %s: FailTime before Start", inj.Node)
		}
		// The terminal failed message must be present in the node's events
		// at FailTime.
		chain := chains[inj.ChainIndex]
		term := chain.Phrases[len(chain.Phrases)-1]
		found := false
		for _, e := range log.NodeEvents(inj.Node) {
			if e.Phrase == term && e.Time.Equal(inj.FailTime) {
				found = true
			}
		}
		if !found {
			t.Errorf("failure %s/%s: terminal phrase missing at FailTime", inj.Node, inj.ChainName)
		}
		// The full chain phrases appear in order (no drop noise configured).
		idx := 0
		for _, e := range log.NodeEvents(inj.Node) {
			if idx < len(chain.Phrases) && e.Phrase == chain.Phrases[idx] && !e.Time.Before(inj.Start) {
				idx++
			}
		}
		if idx != len(chain.Phrases) {
			t.Errorf("failure %s/%s: only %d/%d chain phrases found in order",
				inj.Node, inj.ChainName, idx, len(chain.Phrases))
		}
	}
	if got := log.FailedNodes(); len(got) != 5 {
		t.Errorf("FailedNodes = %v", got)
	}
}

func TestDropProbDropsPhrases(t *testing.T) {
	cfg := Config{Dialect: DialectXC30, Seed: 3, Duration: 3 * time.Hour, Nodes: 10,
		Failures: 10, DropProb: 0.5}
	log, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, inj := range log.Failures {
		total += inj.Dropped
	}
	if total == 0 {
		t.Error("DropProb=0.5 dropped nothing across 10 failures")
	}
}

func TestChainGapDistribution(t *testing.T) {
	g := &generator{cfg: Config{}, rng: newTestRng(1)}
	n := 5000
	under2min := 0
	for i := 0; i < n; i++ {
		d := g.chainGap()
		if d <= 0 {
			t.Fatalf("non-positive gap %v", d)
		}
		if d <= 2*time.Minute {
			under2min++
		}
	}
	frac := float64(under2min) / float64(n)
	// Fig. 5: ~92% of phrase arrivals within ≤ 2 minutes.
	if frac < 0.85 {
		t.Errorf("fraction of gaps ≤ 2min = %.3f, want ≥ 0.85", frac)
	}
}

func TestFinalGapRange(t *testing.T) {
	g := &generator{cfg: Config{}, rng: newTestRng(2)}
	for i := 0; i < 1000; i++ {
		d := g.finalGap()
		if d < 90*time.Second || d > 4*time.Minute {
			t.Fatalf("final gap %v outside [1.5m, 4m]", d)
		}
	}
}

func TestLinesRoundTripThroughScanner(t *testing.T) {
	cfg := Config{Dialect: DialectXC30, Seed: 5, Duration: 30 * time.Minute, Nodes: 3, Failures: 1}
	log, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := lexgen.NewScanner(log.Dialect.Inventory())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range log.Events {
		id, ok := sc.Scan(e.Message)
		if !ok {
			t.Fatalf("generated message does not scan: %q", e.Message)
		}
		if id != e.Phrase {
			t.Fatalf("scan mismatch: message %q scanned as %d, generated as %d", e.Message, id, e.Phrase)
		}
	}
}

// Every dialect's injected chain phrases must survive the scan round trip:
// a chain event rendered to text and scanned back must yield the chain's own
// phrase ID, or the predictor could never match that chain. This guards
// against dialects whose chains reference a template shadowed by an
// identical earlier pattern.
func TestAllDialectsChainScanRoundTrip(t *testing.T) {
	for _, d := range []*Dialect{
		DialectXC30, DialectXE6, DialectXC40, DialectXC4030,
		DialectXK, DialectBGP, DialectCassandra, DialectHadoop,
	} {
		if len(d.Chains()) == 0 {
			continue
		}
		log, err := Generate(Config{
			Dialect: d, Seed: 31, Duration: 2 * time.Hour,
			Nodes: 4, Failures: len(d.Chains()),
		})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		sc, err := lexgen.NewScanner(d.Inventory())
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		chains := d.Chains()
		for _, inj := range log.Failures {
			chain := chains[inj.ChainIndex]
			idx := 0
			for _, e := range log.NodeEvents(inj.Node) {
				if e.Time.Before(inj.Start) || idx >= len(chain.Phrases) {
					continue
				}
				id, ok := sc.Scan(e.Message)
				if !ok {
					t.Fatalf("%s: chain message %q does not scan", d.Name, e.Message)
				}
				if id == chain.Phrases[idx] {
					idx++
				}
			}
			if idx != len(chain.Phrases) {
				t.Errorf("%s %s: scan round trip recovered %d/%d chain phrases",
					d.Name, inj.ChainName, idx, len(chain.Phrases))
			}
		}
	}
}

func TestWriteToAndParseBack(t *testing.T) {
	cfg := Config{Dialect: DialectXE6, Seed: 9, Duration: 20 * time.Minute, Nodes: 2, Failures: 1}
	log, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := log.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(log.Events) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(log.Events))
	}
	for i, line := range lines {
		ts, node, msg, err := lexgen.ParseLine(line)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		e := log.Events[i]
		if node != e.Node || msg != e.Message {
			t.Fatalf("line %d round trip mismatch", i)
		}
		if ts.UnixMilli() != e.Time.UnixMilli() {
			t.Fatalf("line %d time mismatch: %v vs %v", i, ts, e.Time)
		}
	}
}

func TestMapChainsXCtoBGP(t *testing.T) {
	// Port the XE chains to BG/P: chains using events BG/P lacks must be
	// reported missing, others remapped (Table IX adaptability).
	mapped, missing := MapChains(DialectXE6.Chains(), DialectXE6, DialectBGP)
	if len(mapped)+len(missing) != len(DialectXE6.Chains()) {
		t.Fatalf("mapped %d + missing %d != %d chains", len(mapped), len(missing), len(DialectXE6.Chains()))
	}
	if len(mapped) == 0 {
		t.Fatal("no XE chain could be ported to BG/P")
	}
	bgpIDs := map[core.PhraseID]bool{}
	for _, tpl := range DialectBGP.Inventory() {
		bgpIDs[tpl.ID] = true
	}
	for _, fc := range mapped {
		for _, p := range fc.Phrases {
			if !bgpIDs[p] {
				t.Errorf("ported chain %s contains non-BG/P phrase %d", fc.Name, p)
			}
		}
	}
}

func TestMapChainsIdentity(t *testing.T) {
	// XC30 → XC40 share the family, so every chain ports; phrase IDs move
	// into the target's range.
	mapped, missing := MapChains(DialectXC30.Chains(), DialectXC30, DialectXC40)
	if len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
	for i, fc := range mapped {
		src := DialectXC30.Chains()[i]
		if len(fc.Phrases) != len(src.Phrases) {
			t.Fatalf("chain %s length changed", fc.Name)
		}
		for _, p := range fc.Phrases {
			if p < 3100 || p >= 4100 {
				t.Errorf("chain %s phrase %d outside XC40 range", fc.Name, p)
			}
		}
	}
}

func TestNodeName(t *testing.T) {
	if NodeName(0) != "c0-0c0s0n0" {
		t.Errorf("NodeName(0) = %s", NodeName(0))
	}
	seen := map[string]bool{}
	for i := 0; i < 1024; i++ {
		n := NodeName(i)
		if seen[n] {
			t.Fatalf("duplicate node name %s at %d", n, i)
		}
		seen[n] = true
	}
}

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
