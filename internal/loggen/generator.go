package loggen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lexgen"
)

// Config parameterizes one synthetic log run.
type Config struct {
	// Dialect selects the system vocabulary (required).
	Dialect *Dialect
	// Seed makes the run reproducible.
	Seed int64
	// Start is the wall-clock origin of the log; zero means 2015-03-14 00:00 UTC.
	Start time.Time
	// Duration is the covered time span (required, > 0).
	Duration time.Duration
	// Nodes is the cluster size (required, > 0).
	Nodes int
	// BenignPerMinute is the mean benign message rate per node per minute
	// (default 2).
	BenignPerMinute float64
	// Failures is the number of node failures to inject (chains drawn
	// round-robin from the dialect's specs across distinct nodes first).
	Failures int
	// AnomalyRate is the fraction of background messages on every node drawn
	// from anomaly (non-terminal) templates instead of benign ones. These
	// scattered phrases exercise the scanner/parser skip paths without
	// forming chains (default 0.05).
	AnomalyRate float64
	// DropProb is the probability that an injected chain phrase is omitted —
	// the knob that produces Phase-1 false negatives (default 0).
	DropProb float64
	// BurstMean is the mean background burst size (default 4). Fig. 5's
	// heavily bursty nodes use larger values.
	BurstMean float64
	// LongGapFrac is the fraction of inter-burst gaps drawn from the
	// ≥ 17-minute tail (default 0.04; negative disables the tail entirely —
	// the knob heartbeat-detection experiments use to keep healthy nodes
	// chatty).
	LongGapFrac float64
	// FailureSilence suppresses background traffic within ±FailureSilence
	// of every injected FailTime: a dying node goes quiet before its
	// terminal failure message (which the HSS emits on its behalf) and
	// stays quiet after. This is the signal heartbeat failure detection
	// feeds on — and the silence starts before the failure, so detecting it
	// yields genuine predictive lead time (default 0 = no silence).
	FailureSilence time.Duration
}

// Event is one generated log message.
type Event struct {
	Time    time.Time
	Node    string
	Phrase  core.PhraseID
	Message string
}

// Line renders the event in the canonical raw-log layout.
func (e Event) Line() string { return lexgen.FormatLine(e.Time, e.Node, e.Message) }

// InjectedFailure is ground truth for one injected node failure.
type InjectedFailure struct {
	Node       string
	ChainIndex int
	ChainName  string
	// Start is the arrival of the first chain phrase; FailTime is the
	// arrival of the terminal failed message (the actual node failure).
	Start    time.Time
	FailTime time.Time
	// Dropped counts chain phrases omitted by DropProb noise.
	Dropped int
}

// Log is a complete generated run: time-sorted events plus ground truth.
type Log struct {
	Dialect  *Dialect
	Events   []Event
	Failures []InjectedFailure
}

const defaultStart = "2015-03-14T00:00:00Z"

// Generate produces a synthetic log per the config.
func Generate(cfg Config) (*Log, error) {
	if cfg.Dialect == nil {
		return nil, fmt.Errorf("loggen: Dialect is required")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loggen: Duration must be positive")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("loggen: Nodes must be positive")
	}
	if cfg.BenignPerMinute == 0 {
		cfg.BenignPerMinute = 2
	}
	if cfg.AnomalyRate == 0 {
		cfg.AnomalyRate = 0.05
	}
	if cfg.BurstMean == 0 {
		cfg.BurstMean = 4
	}
	if cfg.LongGapFrac == 0 {
		cfg.LongGapFrac = 0.04
	}
	if cfg.LongGapFrac < 0 {
		cfg.LongGapFrac = 0
	}
	if cfg.Start.IsZero() {
		cfg.Start, _ = time.Parse(time.RFC3339, defaultStart)
	}
	if len(cfg.Dialect.specs) == 0 && cfg.Failures > 0 {
		return nil, fmt.Errorf("loggen: dialect %s has no chains to inject", cfg.Dialect.Name)
	}
	hasBenign := false
	for _, t := range cfg.Dialect.inventory {
		if t.Class == core.Benign {
			hasBenign = true
			break
		}
	}
	if !hasBenign {
		return nil, fmt.Errorf("loggen: dialect %s has no benign templates for background traffic", cfg.Dialect.Name)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, rng: rng, d: cfg.Dialect}
	log := &Log{Dialect: cfg.Dialect}

	nodes := make([]string, cfg.Nodes)
	for i := range nodes {
		nodes[i] = NodeName(i)
	}

	// Failure injection first: distinct nodes first, then reuse ("a node may
	// fail successively over different time frames"). The failure windows
	// are recorded so background generation can avoid planting scattered
	// anomalies inside them — the paper's empirical observation that
	// "unhealthy nodes experience a complete match with FCs with only rare
	// cases of interleaving" (§III, Table V discussion).
	windows := map[string][][2]time.Time{}
	silences := map[string][][2]time.Time{}
	for f := 0; f < cfg.Failures; f++ {
		node := nodes[f%len(nodes)]
		chainIdx := f % len(cfg.Dialect.specs)
		inj := g.injectFailure(log, node, chainIdx)
		windows[node] = append(windows[node], [2]time.Time{
			inj.Start.Add(-5 * time.Minute), inj.FailTime,
		})
		if cfg.FailureSilence > 0 {
			silences[node] = append(silences[node], [2]time.Time{
				inj.FailTime.Add(-cfg.FailureSilence), inj.FailTime.Add(cfg.FailureSilence),
			})
		}
	}

	// Background traffic on every node.
	for _, node := range nodes {
		g.background(log, node, windows[node], silences[node])
	}

	sort.SliceStable(log.Events, func(i, j int) bool {
		return log.Events[i].Time.Before(log.Events[j].Time)
	})
	sort.SliceStable(log.Failures, func(i, j int) bool {
		return log.Failures[i].FailTime.Before(log.Failures[j].FailTime)
	})
	return log, nil
}

// NodeName formats the i-th node in Cray cX-YcCsSnN style.
func NodeName(i int) string {
	return fmt.Sprintf("c%d-%dc%ds%dn%d", i/256, (i/64)%4, (i/16)%4, (i/4)%4, i%4)
}

type generator struct {
	cfg Config
	rng *rand.Rand
	d   *Dialect
}

// lognormal samples exp(N(mu, sigma²)) where mu is ln of the median.
func (g *generator) lognormal(median time.Duration, sigma float64) time.Duration {
	mu := math.Log(float64(median))
	v := math.Exp(mu + sigma*g.rng.NormFloat64())
	return time.Duration(v)
}

// background emits benign (and scattered anomaly) traffic for one node,
// following the Fig. 5 shape: intra-burst gaps of tens of milliseconds,
// inter-burst gaps of minutes, and a heavy tail of ≥ 17-minute silences.
// Inside the node's failure windows only benign phrases are emitted; inside
// its FailureSilence windows nothing is — the timeline still advances, so
// the silence is a gap in otherwise unchanged traffic, not a reshuffle.
func (g *generator) background(log *Log, node string, avoid, silence [][2]time.Time) {
	end := g.cfg.Start.Add(g.cfg.Duration)
	// Inter-burst mean chosen so the overall rate ≈ BenignPerMinute.
	burstMean := g.cfg.BurstMean
	interBurst := time.Duration(float64(time.Minute) * burstMean / g.cfg.BenignPerMinute)
	t := g.cfg.Start.Add(time.Duration(g.rng.Float64() * float64(interBurst)))
	for t.Before(end) {
		// One burst.
		burstLen := 1 + g.geometric(1/burstMean)
		for b := 0; b < burstLen && t.Before(end); b++ {
			if !inWindow(t, silence) {
				log.Events = append(log.Events, g.backgroundEvent(node, t, inWindow(t, avoid)))
			}
			t = t.Add(g.lognormal(25*time.Millisecond, 0.8))
		}
		// Gap to the next burst; LongGapFrac of gaps land in the
		// ≥ 17-minute tail.
		if g.rng.Float64() < g.cfg.LongGapFrac {
			t = t.Add(17*time.Minute + time.Duration(g.rng.Float64()*float64(40*time.Minute)))
		} else {
			t = t.Add(g.expDuration(interBurst))
		}
	}
}

func inWindow(t time.Time, windows [][2]time.Time) bool {
	for _, w := range windows {
		if !t.Before(w[0]) && !t.After(w[1]) {
			return true
		}
	}
	return false
}

func (g *generator) backgroundEvent(node string, t time.Time, benignOnly bool) Event {
	var tpl core.Template
	if !benignOnly && g.rng.Float64() < g.cfg.AnomalyRate {
		anoms := g.anomalyNonTerminal()
		tpl = anoms[g.rng.Intn(len(anoms))]
	} else {
		benign := g.benignTemplates()
		tpl = benign[g.rng.Intn(len(benign))]
	}
	return Event{Time: t, Node: node, Phrase: tpl.ID, Message: g.instantiate(tpl, node)}
}

func (g *generator) benignTemplates() []core.Template {
	var out []core.Template
	for _, t := range g.d.inventory {
		if t.Class == core.Benign {
			out = append(out, t)
		}
	}
	return out
}

func (g *generator) anomalyNonTerminal() []core.Template {
	var out []core.Template
	for _, t := range g.d.inventory {
		if t.Class != core.Benign && t.Class != core.Failed {
			out = append(out, t)
		}
	}
	return out
}

func (g *generator) geometric(p float64) int {
	n := 0
	for g.rng.Float64() > p && n < 64 {
		n++
	}
	return n
}

func (g *generator) expDuration(mean time.Duration) time.Duration {
	return time.Duration(g.rng.ExpFloat64() * float64(mean))
}

// chainGap samples the ΔT between adjacent chain phrases: mostly seconds,
// with millisecond bursts and a bounded tail, so ≳ 92% of gaps stay under
// two minutes (Fig. 5).
func (g *generator) chainGap() time.Duration {
	switch r := g.rng.Float64(); {
	case r < 0.20:
		return g.lognormal(40*time.Millisecond, 1.0)
	case r < 0.85:
		d := g.lognormal(10*time.Second, 1.0)
		if d > 110*time.Second {
			d = 110 * time.Second
		}
		return d
	default:
		d := g.lognormal(60*time.Second, 0.5)
		if d > 115*time.Second {
			d = 115 * time.Second
		}
		return d
	}
}

// finalGap samples the ΔT before the terminal failed message — the budget
// from which the lead time is carved (paper: >3 min achievable, ≈2.7 min
// average).
func (g *generator) finalGap() time.Duration {
	return 90*time.Second + time.Duration(g.rng.Float64()*float64(2*time.Minute+30*time.Second))
}

// injectFailure emits one chain instance on the node at a random offset and
// returns its ground truth.
func (g *generator) injectFailure(log *Log, node string, chainIdx int) InjectedFailure {
	spec := g.d.specs[chainIdx]
	// Pick a start leaving room for the chain (~len × 2 min worst case).
	budget := time.Duration(len(spec.Events)) * 2 * time.Minute
	span := g.cfg.Duration - budget
	if span < 0 {
		span = g.cfg.Duration / 2
	}
	t := g.cfg.Start.Add(time.Duration(g.rng.Float64() * float64(span)))

	inj := InjectedFailure{Node: node, ChainIndex: chainIdx, ChainName: spec.Name, Start: t}
	for i, ev := range spec.Events {
		tpl := g.d.byKey[ev]
		last := i == len(spec.Events)-1
		if i > 0 {
			if last {
				t = t.Add(g.finalGap())
			} else {
				t = t.Add(g.chainGap())
			}
		}
		if !last && g.rng.Float64() < g.cfg.DropProb {
			inj.Dropped++
			continue
		}
		log.Events = append(log.Events, Event{Time: t, Node: node, Phrase: tpl.ID, Message: g.instantiate(tpl, node)})
	}
	inj.FailTime = t
	log.Failures = append(log.Failures, inj)
	return inj
}

// fillers provide plausible wildcard substitutions.
var fillerPaths = []string{"/global/scratch", "/lus/snx11025", "/var/spool/slurm", "/dsl/opt/cray"}

func (g *generator) instantiate(tpl core.Template, node string) string {
	var sb strings.Builder
	for i := 0; i < len(tpl.Pattern); i++ {
		c := tpl.Pattern[i]
		if c != '*' {
			sb.WriteByte(c)
			continue
		}
		switch g.rng.Intn(6) {
		case 0:
			fmt.Fprintf(&sb, "%s", node)
		case 1:
			fmt.Fprintf(&sb, "0x%08x", g.rng.Uint32())
		case 2:
			fmt.Fprintf(&sb, "%d", g.rng.Intn(100000))
		case 3:
			sb.WriteString(fillerPaths[g.rng.Intn(len(fillerPaths))])
		case 4:
			// Single-token variables, as real syslog fields are: log-template
			// miners (internal/drain) rely on one variable ≈ one token.
			fmt.Fprintf(&sb, "pid=%d:uid=%d", g.rng.Intn(65536), g.rng.Intn(10000))
		default:
			fmt.Fprintf(&sb, "c%d-%dc%ds%dn%d", g.rng.Intn(8), g.rng.Intn(4), g.rng.Intn(4), g.rng.Intn(8), g.rng.Intn(4))
		}
	}
	return sb.String()
}

// Lines renders every event as a raw log line, in time order.
func (l *Log) Lines() []string {
	out := make([]string, len(l.Events))
	for i, e := range l.Events {
		out[i] = e.Line()
	}
	return out
}

// WriteTo streams the raw log to w.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, e := range l.Events {
		k, err := bw.WriteString(e.Line())
		n += int64(k)
		if err != nil {
			return n, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// NodeEvents returns the events of one node, in time order.
func (l *Log) NodeEvents(node string) []Event {
	var out []Event
	for _, e := range l.Events {
		if e.Node == node {
			out = append(out, e)
		}
	}
	return out
}

// Tokens converts the events into scanner-level tokens (phrase + time +
// node), the input format of the Phase-1 trainer.
func (l *Log) Tokens() []core.Token {
	out := make([]core.Token, len(l.Events))
	for i, e := range l.Events {
		out[i] = core.Token{Phrase: e.Phrase, Time: e.Time, Node: e.Node}
	}
	return out
}

// FailedNodes returns the distinct nodes with injected failures.
func (l *Log) FailedNodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range l.Failures {
		if !seen[f.Node] {
			seen[f.Node] = true
			out = append(out, f.Node)
		}
	}
	return out
}
