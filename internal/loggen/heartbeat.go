package loggen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Heartbeat stream generation: a regular per-node liveness cadence with
// jitter, random drops and injected flap episodes — the workload shape that
// exercises a phi-accrual failure detector rather than the chain parser.
// Messages are drawn from the dialect's benign templates, so the stream
// parses like any other log and feeds the same ingest paths.

// HeartbeatConfig parameterizes one synthetic heartbeat run.
type HeartbeatConfig struct {
	// Dialect supplies the benign message vocabulary (default XC30).
	Dialect *Dialect
	// Seed makes the run reproducible.
	Seed int64
	// Start is the wall-clock origin; zero means 2015-03-14 00:00 UTC.
	Start time.Time
	// Duration is the covered time span (required, > 0).
	Duration time.Duration
	// Nodes is the cluster size (required, > 0).
	Nodes int
	// Interval is the nominal gap between a node's heartbeats (required).
	Interval time.Duration
	// Jitter is the fractional uniform jitter on each gap: a gap is drawn
	// from Interval × [1−Jitter, 1+Jitter] (default 0.1; negative disables).
	Jitter float64
	// DropProb silently skips a beat with this probability — missed beats a
	// detector must absorb without alerting (default 0).
	DropProb float64
	// Flaps is the number of flap episodes to inject, round-robin across
	// nodes: the node goes completely silent for FlapSilence, then resumes
	// its cadence (default 0).
	Flaps int
	// FlapSilence is the length of each flap episode's silence (default
	// 10 × Interval).
	FlapSilence time.Duration
}

// FlapEpisode is ground truth for one injected heartbeat flap: the node
// emits nothing in [Start, End] and resumes after.
type FlapEpisode struct {
	Node  string
	Start time.Time
	End   time.Time
}

// GenerateHeartbeats produces a heartbeat stream per the config, plus the
// injected flap ground truth, sorted by time.
func GenerateHeartbeats(cfg HeartbeatConfig) (*Log, []FlapEpisode, error) {
	if cfg.Dialect == nil {
		cfg.Dialect = DialectXC30
	}
	if cfg.Duration <= 0 {
		return nil, nil, fmt.Errorf("loggen: heartbeat Duration must be positive")
	}
	if cfg.Nodes <= 0 {
		return nil, nil, fmt.Errorf("loggen: heartbeat Nodes must be positive")
	}
	if cfg.Interval <= 0 {
		return nil, nil, fmt.Errorf("loggen: heartbeat Interval must be positive")
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.1
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Jitter > 0.9 {
		return nil, nil, fmt.Errorf("loggen: heartbeat Jitter must be at most 0.9")
	}
	if cfg.DropProb < 0 || cfg.DropProb >= 1 {
		return nil, nil, fmt.Errorf("loggen: heartbeat DropProb must be in [0,1)")
	}
	if cfg.FlapSilence <= 0 {
		cfg.FlapSilence = 10 * cfg.Interval
	}
	if cfg.Start.IsZero() {
		cfg.Start, _ = time.Parse(time.RFC3339, defaultStart)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: Config{Dialect: cfg.Dialect}, rng: rng, d: cfg.Dialect}
	benign := g.benignTemplates()
	if len(benign) == 0 {
		return nil, nil, fmt.Errorf("loggen: dialect %s has no benign templates for heartbeats", cfg.Dialect.Name)
	}

	// Flap episodes first (round-robin across nodes at random offsets), so
	// beat emission can honor the silences.
	silences := map[string][][2]time.Time{}
	var flaps []FlapEpisode
	for f := 0; f < cfg.Flaps; f++ {
		node := NodeName(f % cfg.Nodes)
		span := cfg.Duration - cfg.FlapSilence
		if span < 0 {
			span = cfg.Duration / 2
		}
		start := cfg.Start.Add(time.Duration(rng.Float64() * float64(span)))
		end := start.Add(cfg.FlapSilence)
		silences[node] = append(silences[node], [2]time.Time{start, end})
		flaps = append(flaps, FlapEpisode{Node: node, Start: start, End: end})
	}

	log := &Log{Dialect: cfg.Dialect}
	end := cfg.Start.Add(cfg.Duration)
	for i := 0; i < cfg.Nodes; i++ {
		node := NodeName(i)
		// Desynchronized start phases, as real fleets have.
		t := cfg.Start.Add(time.Duration(rng.Float64() * float64(cfg.Interval)))
		for t.Before(end) {
			if !inWindow(t, silences[node]) && rng.Float64() >= cfg.DropProb {
				tpl := benign[rng.Intn(len(benign))]
				log.Events = append(log.Events, Event{
					Time: t, Node: node, Phrase: tpl.ID, Message: g.instantiate(tpl, node),
				})
			}
			jit := 1 + cfg.Jitter*(2*rng.Float64()-1)
			t = t.Add(time.Duration(float64(cfg.Interval) * jit))
		}
	}

	sort.SliceStable(log.Events, func(i, j int) bool {
		return log.Events[i].Time.Before(log.Events[j].Time)
	})
	sort.SliceStable(flaps, func(i, j int) bool {
		return flaps[i].Start.Before(flaps[j].Start)
	})
	return log, flaps, nil
}
