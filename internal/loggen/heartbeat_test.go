package loggen

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestHeartbeatDeterministic(t *testing.T) {
	cfg := HeartbeatConfig{
		Seed: 11, Duration: time.Hour, Nodes: 5, Interval: 10 * time.Second,
		DropProb: 0.05, Flaps: 2,
	}
	l1, f1, err := GenerateHeartbeats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l2, f2, err := GenerateHeartbeats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1.Events) != len(l2.Events) || len(f1) != len(f2) {
		t.Fatalf("same seed, different sizes: %d/%d events, %d/%d flaps",
			len(l1.Events), len(l2.Events), len(f1), len(f2))
	}
	for i := range l1.Events {
		if l1.Events[i] != l2.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, l1.Events[i], l2.Events[i])
		}
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("flap %d differs: %+v vs %+v", i, f1[i], f2[i])
		}
	}
}

func TestHeartbeatCadenceAndOrder(t *testing.T) {
	cfg := HeartbeatConfig{
		Seed: 3, Duration: 30 * time.Minute, Nodes: 3, Interval: 15 * time.Second,
		Jitter: 0.2,
	}
	log, flaps, err := GenerateHeartbeats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flaps) != 0 {
		t.Fatalf("no flaps requested, got %d", len(flaps))
	}
	perNode := map[string][]time.Time{}
	for i, e := range log.Events {
		if i > 0 && e.Time.Before(log.Events[i-1].Time) {
			t.Fatalf("events out of order at %d", i)
		}
		perNode[e.Node] = append(perNode[e.Node], e.Time)
	}
	if len(perNode) != cfg.Nodes {
		t.Fatalf("got %d nodes, want %d", len(perNode), cfg.Nodes)
	}
	lo := float64(cfg.Interval) * (1 - cfg.Jitter)
	hi := float64(cfg.Interval) * (1 + cfg.Jitter)
	for node, beats := range perNode {
		want := int(float64(cfg.Duration) / float64(cfg.Interval))
		if len(beats) < want-5 || len(beats) > want+5 {
			t.Errorf("%s: %d beats, want ≈ %d", node, len(beats), want)
		}
		for i := 1; i < len(beats); i++ {
			gap := float64(beats[i].Sub(beats[i-1]))
			if gap < lo-1 || gap > hi+1 {
				t.Errorf("%s: gap %v outside jitter band [%v, %v]",
					node, time.Duration(gap), time.Duration(lo), time.Duration(hi))
			}
		}
	}
}

func TestHeartbeatFlapSilence(t *testing.T) {
	cfg := HeartbeatConfig{
		Seed: 9, Duration: 2 * time.Hour, Nodes: 4, Interval: 10 * time.Second,
		Flaps: 3, FlapSilence: 5 * time.Minute,
	}
	log, flaps, err := GenerateHeartbeats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flaps) != cfg.Flaps {
		t.Fatalf("got %d flap episodes, want %d", len(flaps), cfg.Flaps)
	}
	for _, fl := range flaps {
		if got := fl.End.Sub(fl.Start); got != cfg.FlapSilence {
			t.Errorf("%s: flap length %v, want %v", fl.Node, got, cfg.FlapSilence)
		}
		for _, e := range log.Events {
			if e.Node == fl.Node && !e.Time.Before(fl.Start) && !e.Time.After(fl.End) {
				t.Errorf("%s: beat at %v inside flap [%v, %v]",
					fl.Node, e.Time, fl.Start, fl.End)
			}
		}
	}
}

func TestHeartbeatDropThinsStream(t *testing.T) {
	base := HeartbeatConfig{Seed: 5, Duration: time.Hour, Nodes: 4, Interval: 10 * time.Second}
	full, _, err := GenerateHeartbeats(base)
	if err != nil {
		t.Fatal(err)
	}
	dropped := base
	dropped.DropProb = 0.5
	thin, _, err := GenerateHeartbeats(dropped)
	if err != nil {
		t.Fatal(err)
	}
	// Around half the beats should survive; anything under 75% proves the
	// knob works without being brittle about the exact RNG draw.
	if len(thin.Events) >= len(full.Events)*3/4 {
		t.Fatalf("DropProb 0.5 kept %d of %d beats", len(thin.Events), len(full.Events))
	}
}

func TestHeartbeatValidation(t *testing.T) {
	bad := []HeartbeatConfig{
		{Nodes: 2, Interval: time.Second},                                      // no duration
		{Duration: time.Hour, Interval: time.Second},                           // no nodes
		{Duration: time.Hour, Nodes: 2},                                        // no interval
		{Duration: time.Hour, Nodes: 2, Interval: time.Second, Jitter: 0.95},   // jitter too big
		{Duration: time.Hour, Nodes: 2, Interval: time.Second, DropProb: 1},    // certain drop
		{Duration: time.Hour, Nodes: 2, Interval: time.Second, DropProb: -0.1}, // negative drop
	}
	for i, cfg := range bad {
		if _, _, err := GenerateHeartbeats(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, _, err := GenerateHeartbeats(HeartbeatConfig{
		Duration: time.Hour, Nodes: 2, Interval: time.Second,
	}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFailureSilenceQuietsDyingNode(t *testing.T) {
	cfg := Config{
		Dialect: DialectXC30, Seed: 21, Duration: 3 * time.Hour, Nodes: 4,
		Failures: 2, BenignPerMinute: 6, FailureSilence: 12 * time.Minute,
	}
	log, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Chain phrases (including the terminal failure the HSS emits on the
	// node's behalf) are exempt from the silence; everything else must be.
	chainPhrase := map[core.PhraseID]bool{}
	for _, fc := range cfg.Dialect.Chains() {
		for _, p := range fc.Phrases {
			chainPhrase[p] = true
		}
	}
	if len(log.Failures) != cfg.Failures {
		t.Fatalf("got %d failures, want %d", len(log.Failures), cfg.Failures)
	}
	for _, inj := range log.Failures {
		lo := inj.FailTime.Add(-cfg.FailureSilence)
		hi := inj.FailTime.Add(cfg.FailureSilence)
		for _, e := range log.Events {
			if e.Node != inj.Node || e.Time.Before(lo) || e.Time.After(hi) {
				continue
			}
			if !chainPhrase[e.Phrase] {
				t.Errorf("%s: background phrase %d at %v inside silence around %v",
					inj.Node, e.Phrase, e.Time, inj.FailTime)
			}
		}
	}

	// The silence is a gap, not a reshuffle: without it the same seed puts
	// background traffic in those windows.
	loud := cfg
	loud.FailureSilence = 0
	ref, err := Generate(loud)
	if err != nil {
		t.Fatal(err)
	}
	inSilence := 0
	for _, inj := range ref.Failures {
		lo := inj.FailTime.Add(-cfg.FailureSilence)
		hi := inj.FailTime.Add(cfg.FailureSilence)
		for _, e := range ref.Events {
			if e.Node == inj.Node && !e.Time.Before(lo) && !e.Time.After(hi) && !chainPhrase[e.Phrase] {
				inSilence++
			}
		}
	}
	if inSilence == 0 {
		t.Fatal("reference run has no background traffic in the silence windows; test has no teeth")
	}
}

func TestNegativeLongGapFracDisablesTail(t *testing.T) {
	cfg := Config{
		Dialect: DialectXC30, Seed: 8, Duration: 4 * time.Hour, Nodes: 2,
		BenignPerMinute: 4, LongGapFrac: -1,
	}
	log, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[string][]time.Time{}
	for _, e := range log.Events {
		perNode[e.Node] = append(perNode[e.Node], e.Time)
	}
	for node, beats := range perNode {
		for i := 1; i < len(beats); i++ {
			if gap := beats[i].Sub(beats[i-1]); gap >= 17*time.Minute {
				t.Errorf("%s: %v gap despite LongGapFrac < 0", node, gap)
			}
		}
	}
}
