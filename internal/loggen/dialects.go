// Package loggen is the data substrate of the reproduction: it generates
// synthetic Cray-style system logs for multi-node clusters, with benign
// background traffic, injected failure chains, and inter-arrival time
// distributions calibrated to the paper's Fig. 5. Production logs from the
// paper's HPC1–HPC4 systems (Table II) are not publicly available; this
// package substitutes template inventories and phrase semantics modeled on
// the paper's Tables I, III and IX.
//
// Each Dialect represents one system family's logging vocabulary. The same
// *semantic* event (say, a node heartbeat fault) renders as different phrase
// text — and a different phrase ID — on different systems, which is exactly
// the adaptability challenge of the paper's §IV: porting a predictor across
// systems requires phrase re-mapping but no change to the core scheme.
package loggen

import (
	"fmt"

	"repro/internal/core"
)

// Event keys name system-independent anomaly semantics. A Dialect maps a key
// to its local phrase template.
const (
	EvFirmwareBug  = "firmware_bug"
	EvDVSVerifyFS  = "dvs_verify_fs"
	EvDVSNodeDown  = "dvs_file_node_down"
	EvLustrePeer   = "lustre_peer"
	EvLNetHWError  = "lnet_hw_error"
	EvNodeFailed   = "node_failed" // terminal failed message
	EvHeartbeat    = "heartbeat_fault"
	EvVoltageFault = "voltage_fault"
	EvMCE          = "machine_check"
	EvKernelPanic  = "kernel_panic"
	EvCallTrace    = "call_trace"
	EvGPUErr       = "gpu_error"
	EvMemPageFault = "gpu_mem_page_fault"
	EvDDRCorrect   = "ddr_correctable"
	EvLinkError    = "link_error"
	EvLDiskWarn    = "ldiskfs_warning"
	EvOOM          = "oom"
	EvHSNThrottle  = "hsn_throttle"
	EvPowerModule  = "power_module"
	EvRPCTimeout   = "rpc_timeout"
	EvSoftLockup   = "soft_lockup"
	EvJobKilled    = "job_killed"
	EvECCFatal     = "ecc_fatal"
	EvSeqUnload    = "seq_unload"
)

// eventDef maps one semantic event to its per-family template text. The '*'
// wildcard swallows variable components (node IDs, hex values, paths).
type eventDef struct {
	key   string
	class core.Class
	text  map[string]string // family → template
}

// Families of logging vocabularies.
const (
	famXC   = "xc"   // Cray XC30/XC40 (bcsysd, Aries)
	famXE   = "xe"   // Cray XE6 (syslog-ng, Gemini)
	famXK   = "xk"   // Cray XK* (GPU-equipped, Table IX HPC5)
	famBGP  = "bgp"  // IBM BlueGene/P (Table IX HPC6)
	famCass = "cass" // Cassandra (Table IX DS)
	famHad  = "had"  // Hadoop (Table IX DS)
)

// anomalyEvents is the master inventory of anomaly-relevant events. Template
// text follows the paper's Tables III and IX where given, and plausible
// vendor phrasing elsewhere.
var anomalyEvents = []eventDef{
	{EvFirmwareBug, core.Erroneous, map[string]string{
		famXC: "[Firmware Bug]: powernow_k8: *",
		famXE: "[Firmware Bug]: ACPI: no _PSS objects *",
		famXK: "[Firmware Bug]: powernow_k8: *",
	}},
	{EvDVSVerifyFS, core.Unknown, map[string]string{
		famXC: "DVS: verify_filesystem: *",
		famXE: "DVS: verify_fs: magic value mismatch *",
		famXK: "DVS: verify_filesystem: *",
	}},
	{EvDVSNodeDown, core.Unknown, map[string]string{
		famXC: "DVS: file_node_down: *",
		famXE: "DVS: fnd: removing * from list of available servers *",
		famXK: "DVS: file_node_down: *",
	}},
	{EvLustrePeer, core.Unknown, map[string]string{
		famXC: "Lustre: * cannot find peer *",
		famXE: "LustreError: * @@@ network error *",
		famXK: "Lustre: * cannot find peer *",
	}},
	{EvLNetHWError, core.Erroneous, map[string]string{
		famXC: "LNet: critical hardware error: *",
		famXE: "LNET: critical error: HCA fatal *",
		famXK: "LNet: critical hardware error: *",
	}},
	{EvNodeFailed, core.Failed, map[string]string{
		famXC:   "cb_node_unavailable: *",
		famXE:   "ec_node_failed: node * marked failed",
		famXK:   "cb_node_unavailable: *",
		famBGP:  "Node System has halted*",
		famCass: "Exiting: error while processing commit log*",
		famHad:  "NameNode: shutdown_msg: *",
	}},
	{EvHeartbeat, core.Erroneous, map[string]string{
		famXC:  "node heartbeat fault: * missed *",
		famXE:  "L0 heartbeat fault detected on *",
		famXK:  "L0 heartbeat fault*",
		famBGP: "Network link errors detected*",
	}},
	{EvVoltageFault, core.Erroneous, map[string]string{
		famXC:  "bcsysd: voltage fault on blade *",
		famXE:  "voltage warning: VRM * out of range",
		famXK:  "Voltage Fault*",
		famBGP: "MMCS detected error: power module*",
	}},
	{EvMCE, core.Erroneous, map[string]string{
		famXC:  "mce: [Hardware Error]: Machine check events logged *",
		famXE:  "Machine Check Exception: * Bank *",
		famXK:  "Machine Check Exception (MCE)*",
		famBGP: "Kernel panic: soft-lockup: hung tasks*",
	}},
	{EvKernelPanic, core.Erroneous, map[string]string{
		famXC:  "Kernel panic - not syncing: *",
		famXE:  "kernel: panic: *",
		famXK:  "Kernel Panic, Call Trace*",
		famBGP: "Kill job * timed out*",
	}},
	{EvCallTrace, core.Unknown, map[string]string{
		famXC: "Call Trace: *",
		famXE: "kernel: Call Trace: *",
		famXK: "Call Trace: *",
	}},
	{EvGPUErr, core.Erroneous, map[string]string{
		famXK: "GPU * PMU communication error*",
		famXC: "nvrm: Xid * GPU error detected *",
	}},
	{EvMemPageFault, core.Erroneous, map[string]string{
		famXK: "GPU * memory page fault*",
		famXC: "nvrm: Xid * MMU fault *",
	}},
	{EvDDRCorrect, core.Unknown, map[string]string{
		famXC:  "EDAC MC0: * correctable error *",
		famXE:  "EDAC amd64: * correctable DRAM error *",
		famBGP: "Node DDR correctable single symbol error(s)*",
	}},
	{EvLinkError, core.Erroneous, map[string]string{
		famXC: "aries_nic: link inactive on ptile *",
		famXE: "gemini_err: link failed on tile *",
		famXK: "gemini_err: link failed on tile *",
	}},
	{EvLDiskWarn, core.Unknown, map[string]string{
		famXC: "LDISKFS-fs warning *",
		famXE: "ldiskfs warning: device * mounting with errors *",
	}},
	{EvOOM, core.Unknown, map[string]string{
		famXC: "Out of memory: Kill process *",
		famXE: "oom-killer: invoked on process *",
		famXK: "Out of memory: Kill process *",
	}},
	{EvHSNThrottle, core.Unknown, map[string]string{
		famXC: "aries_rtr: throttle asserted on tile *",
		famXE: "gemini_rtr: congestion protection engaged *",
	}},
	{EvPowerModule, core.Erroneous, map[string]string{
		famXC:  "bcsysd: power module fault cabinet *",
		famXE:  "power module fault detected on cage *",
		famBGP: "MMCS detected error: power module*",
	}},
	{EvRPCTimeout, core.Unknown, map[string]string{
		famXC: "ptlrpc: * request timed out *",
		famXE: "ptlrpc: RPC to * timed out *",
	}},
	{EvSoftLockup, core.Erroneous, map[string]string{
		famXC:  "BUG: soft lockup - CPU#* stuck for *",
		famXE:  "kernel: BUG: soft lockup detected on CPU *",
		famBGP: "Kernel panic: soft-lockup: hung tasks*",
	}},
	{EvJobKilled, core.Unknown, map[string]string{
		famXC: "slurmd: *: Job * killed *",
		famXE: "pbs_mom: job * killed on node *",
	}},
	{EvECCFatal, core.Erroneous, map[string]string{
		famXC: "EDAC MC0: * uncorrectable error *",
		famXE: "EDAC amd64: uncorrectable ECC error *",
	}},
	{EvSeqUnload, core.Unknown, map[string]string{
		famXC: "seq_unload: sequencer * unloading *",
		famXE: "seq_unload: sequencer halted on *",
	}},
	// Distributed-system events (Table IX).
	{"cass_jvm_lock", core.Unknown, map[string]string{famCass: "Unable to lock JVM memory*"}},
	{"cass_degraded", core.Erroneous, map[string]string{famCass: "Server running in degraded mode*"}},
	{"cass_no_rpc", core.Unknown, map[string]string{famCass: "Not starting RPC server as requested*"}},
	{"cass_no_host", core.Erroneous, map[string]string{famCass: "No host ID found*"}},
	{"cass_thread_exc", core.Erroneous, map[string]string{famCass: "Exception in thread Thread*"}},
	{"had_no_node", core.Unknown, map[string]string{famHad: "No node available for block*"}},
	{"had_no_block", core.Unknown, map[string]string{famHad: "Could not obtain block*"}},
	{"had_io_exc", core.Erroneous, map[string]string{famHad: "DFS Read: java IOException*"}},
	{"had_no_live", core.Erroneous, map[string]string{famHad: "No live nodes contain current block*"}},
	{"had_connect", core.Erroneous, map[string]string{famHad: "DFSClient: Failed to connect*"}},
}

// benignEvents are background phrases that never participate in chains. They
// dominate healthy traffic (Fig. 12: FC-related fractions stay below 47%).
var benignEvents = []eventDef{
	{"sshd_accept", core.Benign, map[string]string{famXC: "sshd[*]: Accepted publickey for * from *", famXE: "sshd[*]: Accepted publickey for * from *", famXK: "sshd[*]: Accepted publickey for * from *"}},
	{"systemd_start", core.Benign, map[string]string{famXC: "systemd[1]: Started Session * of user *", famXE: "init: job * started", famXK: "systemd[1]: Started Session * of user *"}},
	{"cron_run", core.Benign, map[string]string{famXC: "CROND[*]: (root) CMD (*)", famXE: "crond[*]: (root) CMD (*)", famXK: "CROND[*]: (root) CMD (*)"}},
	{"job_start", core.Benign, map[string]string{famXC: "slurmd: launch task * for job *", famXE: "pbs_mom: job * started on node *", famXK: "slurmd: launch task * for job *"}},
	{"job_end", core.Benign, map[string]string{famXC: "slurmd: done with job *", famXE: "pbs_mom: job * exited with status *", famXK: "slurmd: done with job *"}},
	{"sedc_temp", core.Benign, map[string]string{famXC: "SEDC: cabinet * temperature reading * C", famXE: "L0_SEDC: temp sensor * reading * C", famXK: "SEDC: cabinet * temperature reading * C"}},
	{"sedc_power", core.Benign, map[string]string{famXC: "SEDC: blade * power draw * W", famXE: "L0_SEDC: blade * power * W", famXK: "SEDC: blade * power draw * W"}},
	{"nfs_ok", core.Benign, map[string]string{famXC: "nfs: server * OK", famXE: "nfs: server * OK", famXK: "nfs: server * OK"}},
	{"ib_up", core.Benign, map[string]string{famXC: "aries_nic: ptile * link active", famXE: "gemini_nic: tile * link active", famXK: "gemini_nic: tile * link active"}},
	{"lustre_ok", core.Benign, map[string]string{famXC: "Lustre: * Connection restored to *", famXE: "Lustre: * Connection restored to *", famXK: "Lustre: * Connection restored to *"}},
	{"dvs_mount", core.Benign, map[string]string{famXC: "DVS: mounted * on *", famXE: "DVS: mounted * on *", famXK: "DVS: mounted * on *"}},
	{"audit_ok", core.Benign, map[string]string{famXC: "audit: type=* audit(*): pid=*", famXE: "audit: type=* audit(*): pid=*", famXK: "audit: type=* audit(*): pid=*"}},
	{"ntp_sync", core.Benign, map[string]string{famXC: "ntpd[*]: synchronized to *", famXE: "ntpd[*]: synchronized to *", famXK: "ntpd[*]: synchronized to *"}},
	{"hugepages", core.Benign, map[string]string{famXC: "craype: hugepages module loaded for job *", famXE: "craype: hugepages module loaded for job *"}},
	{"rca_event", core.Benign, map[string]string{famXC: "RCA: event * published by *", famXE: "RCA: event * published by *"}},
	{"bcsys_hb", core.Benign, map[string]string{famXC: "bcsysd: heartbeat OK blade *", famXE: "syslog-ng: heartbeat OK *"}},
	{"alps_reg", core.Benign, map[string]string{famXC: "apsys: apid * registered", famXE: "apsys: apid * registered"}},
	{"mem_info", core.Benign, map[string]string{famXC: "kernel: Memory: * available", famXE: "kernel: Memory: * available"}},
	{"cpu_gov", core.Benign, map[string]string{famXC: "cpufreq: governor set to * on cpu *", famXE: "cpufreq: governor set to * on cpu *"}},
	{"fs_quota", core.Benign, map[string]string{famXC: "quota: usage for uid * on * at *%", famXE: "quota: usage for uid * on * at *%"}},
	{"bgp_ciod", core.Benign, map[string]string{famBGP: "ciod: LOGIN chdir(*) successful"}},
	{"bgp_ras_info", core.Benign, map[string]string{famBGP: "RAS KERNEL INFO * total interrupts *"}},
	{"bgp_mmcs_ok", core.Benign, map[string]string{famBGP: "MMCS: booting block * status OK"}},
	{"bgp_job", core.Benign, map[string]string{famBGP: "mpirun: job * started on partition *"}},
	{"cass_gc", core.Benign, map[string]string{famCass: "GC for ParNew: * ms, * reclaimed"}},
	{"cass_compact", core.Benign, map[string]string{famCass: "Compacting * sstables for *"}},
	{"had_heartbeat", core.Benign, map[string]string{famHad: "DataNode: heartbeat to namenode * took * ms"}},
	{"had_block_ok", core.Benign, map[string]string{famHad: "DataNode: Received block * of size * from *"}},
}

// ChainSpec names a failure chain as a sequence of semantic events. The last
// event must be the terminal failed message (class Failed).
type ChainSpec struct {
	Name   string
	Events []string
}

// Dialect is one system family's logging vocabulary plus its ground-truth
// failure chains.
type Dialect struct {
	Name        string
	Family      string
	Description string

	idBase    core.PhraseID
	byKey     map[string]core.Template
	inventory []core.Template
	specs     []ChainSpec
}

// newDialect assembles a dialect from the master event inventories. Events
// with no text for the family are omitted.
func newDialect(name, family, description string, idBase core.PhraseID, specs []ChainSpec) *Dialect {
	d := &Dialect{
		Name: name, Family: family, Description: description,
		idBase: idBase, byKey: map[string]core.Template{}, specs: specs,
	}
	id := idBase
	add := func(defs []eventDef) {
		for _, def := range defs {
			text, ok := def.text[family]
			if !ok {
				continue
			}
			t := core.Template{ID: id, Pattern: text, Class: def.class}
			d.byKey[def.key] = t
			d.inventory = append(d.inventory, t)
			id++
		}
	}
	add(anomalyEvents)
	add(benignEvents)
	for _, spec := range specs {
		for _, ev := range spec.Events {
			if _, ok := d.byKey[ev]; !ok {
				panic(fmt.Sprintf("loggen: dialect %s: chain %s references unknown event %q", name, spec.Name, ev))
			}
		}
		last := spec.Events[len(spec.Events)-1]
		if d.byKey[last].Class != core.Failed {
			panic(fmt.Sprintf("loggen: dialect %s: chain %s does not end in a failed message", name, spec.Name))
		}
	}
	return d
}

// Template returns the dialect's template for a semantic event key.
func (d *Dialect) Template(key string) (core.Template, bool) {
	t, ok := d.byKey[key]
	return t, ok
}

// Inventory returns all templates (anomalous and benign).
func (d *Dialect) Inventory() []core.Template {
	return append([]core.Template(nil), d.inventory...)
}

// AnomalyTemplates returns the non-benign templates.
func (d *Dialect) AnomalyTemplates() []core.Template {
	var out []core.Template
	for _, t := range d.inventory {
		if t.Class != core.Benign {
			out = append(out, t)
		}
	}
	return out
}

// ChainSpecs returns the dialect's semantic chain definitions.
func (d *Dialect) ChainSpecs() []ChainSpec {
	return append([]ChainSpec(nil), d.specs...)
}

// Chains resolves the semantic chain specs to phrase-ID failure chains
// (including the terminal failed message as the last phrase).
func (d *Dialect) Chains() []core.FailureChain {
	out := make([]core.FailureChain, len(d.specs))
	for i, spec := range d.specs {
		fc := core.FailureChain{Name: spec.Name}
		for _, ev := range spec.Events {
			fc.Phrases = append(fc.Phrases, d.byKey[ev].ID)
		}
		out[i] = fc
	}
	return out
}

// EventKeyOf reverse-maps a phrase ID to its semantic event key.
func (d *Dialect) EventKeyOf(id core.PhraseID) (string, bool) {
	for key, t := range d.byKey {
		if t.ID == id {
			return key, true
		}
	}
	return "", false
}

// xcChains are the failure chains of the XC-family production systems. The
// first chain is FC3 of Table III verbatim; lengths range from 5 to 18
// phrases (18 is the paper's headline chain length).
func xcChains() []ChainSpec {
	return []ChainSpec{
		{"FC1", []string{EvFirmwareBug, EvDVSVerifyFS, EvDVSNodeDown, EvLustrePeer, EvLNetHWError, EvNodeFailed}},
		{"FC2", []string{EvHeartbeat, EvVoltageFault, EvMCE, EvKernelPanic, EvNodeFailed}},
		{"FC3", []string{EvLustrePeer, EvLDiskWarn, EvRPCTimeout, EvDVSVerifyFS, EvDVSNodeDown, EvOOM, EvMCE, EvNodeFailed}},
		{"FC4", []string{EvLinkError, EvHSNThrottle, EvRPCTimeout, EvLustrePeer, EvLNetHWError, EvCallTrace, EvSoftLockup, EvKernelPanic, EvCallTrace, EvNodeFailed}},
		{"FC5", []string{EvDDRCorrect, EvDDRCorrect, EvECCFatal, EvMCE, EvCallTrace, EvKernelPanic, EvNodeFailed}},
		{"FC6", []string{EvPowerModule, EvVoltageFault, EvHeartbeat, EvLinkError, EvHSNThrottle, EvRPCTimeOrPeer(0), EvRPCTimeOrPeer(1), EvDVSVerifyFS, EvDVSNodeDown, EvLDiskWarn, EvOOM, EvJobKilled, EvCallTrace, EvSoftLockup, EvMCE, EvECCFatal, EvKernelPanic, EvNodeFailed}},
	}
}

// EvRPCTimeOrPeer alternates two filesystem events, used to build the longer
// chains without immediate repetition.
func EvRPCTimeOrPeer(i int) string {
	if i%2 == 0 {
		return EvRPCTimeout
	}
	return EvLustrePeer
}

func xeChains() []ChainSpec {
	return []ChainSpec{
		{"FC1", []string{EvHeartbeat, EvVoltageFault, EvPowerModule, EvMCE, EvNodeFailed}},
		{"FC2", []string{EvLinkError, EvHSNThrottle, EvRPCTimeout, EvLustrePeer, EvLNetHWError, EvNodeFailed}},
		{"FC3", []string{EvDDRCorrect, EvECCFatal, EvMCE, EvSoftLockup, EvKernelPanic, EvCallTrace, EvNodeFailed}},
		{"FC4", []string{EvDVSVerifyFS, EvDVSNodeDown, EvLDiskWarn, EvOOM, EvJobKilled, EvSoftLockup, EvKernelPanic, EvNodeFailed}},
		{"FC5", []string{EvFirmwareBug, EvMCE, EvCallTrace, EvKernelPanic, EvNodeFailed}},
	}
}

func xkChains() []ChainSpec {
	return []ChainSpec{
		{"FC1", []string{EvGPUErr, EvMemPageFault, EvMCE, EvKernelPanic, EvNodeFailed}},
		{"FC2", []string{EvHeartbeat, EvVoltageFault, EvMCE, EvNodeFailed}},
		{"FC3", []string{EvLinkError, EvLustrePeer, EvLNetHWError, EvOOM, EvCallTrace, EvNodeFailed}},
	}
}

// bgpChains uses only scanner-canonical events: on BG/P several semantic
// events share template text (e.g. machine_check and soft_lockup both
// surface as "Kernel panic: soft-lockup"), and the scanner resolves such
// collisions to the earliest template — so chains reference that one. FC1 is
// semantically identical to the XC family's FC2, which is what makes the
// cross-system porting demonstration land.
func bgpChains() []ChainSpec {
	return []ChainSpec{
		{"FC1", []string{EvHeartbeat, EvVoltageFault, EvMCE, EvKernelPanic, EvNodeFailed}},
		{"FC2", []string{EvDDRCorrect, EvDDRCorrect, EvMCE, EvKernelPanic, EvNodeFailed}},
	}
}

func cassChains() []ChainSpec {
	return []ChainSpec{
		{"FC1", []string{"cass_jvm_lock", "cass_degraded", "cass_no_rpc", "cass_no_host", "cass_thread_exc", EvNodeFailed}},
	}
}

func hadChains() []ChainSpec {
	return []ChainSpec{
		{"FC1", []string{"had_no_node", "had_no_block", "had_io_exc", "had_no_live", "had_connect", EvNodeFailed}},
	}
}

// The built-in dialects. ID bases are disjoint so that phrase IDs never
// collide across systems — porting a rule set across dialects therefore
// requires the explicit re-mapping of MapChains, as in the paper.
var (
	DialectXC30 = newDialect("Cray XC30", famXC,
		"Aries (DragonFly), Haswell/IvyBridge, Slurm — HPC1", 1100, xcChains())
	DialectXE6 = newDialect("Cray XE6", famXE,
		"Gemini (Torus), AMD Opteron, Torque — HPC2", 2100, xeChains())
	DialectXC40 = newDialect("Cray XC40", famXC,
		"Aries (DragonFly), Haswell/KNL, burst buffer, Slurm — HPC3", 3100, xcChains())
	DialectXC4030 = newDialect("Cray XC40/30", famXC,
		"Aries (DragonFly), mixed Haswell generations, Slurm — HPC4", 4100, xcChains())
	DialectXK = newDialect("Cray XK7", famXK,
		"Gemini, AMD Opteron + GPUs — HPC5 of Table IX", 5100, xkChains())
	DialectBGP = newDialect("IBM BG/P", famBGP,
		"BlueGene/P — HPC6 of Table IX", 6100, bgpChains())
	DialectCassandra = newDialect("Cassandra", famCass,
		"distributed store, application-centric logs — Table IX DS", 7100, cassChains())
	DialectHadoop = newDialect("Hadoop", famHad,
		"HDFS cluster, application-centric logs — Table IX DS", 8100, hadChains())
)

// MapChains ports failure chains from one dialect to another by semantic
// event equivalence — the paper's "phrase re-mappings and rule updates
// suffice" adaptability workflow. Chains containing an event the target
// dialect cannot express are reported in missing and omitted from the
// result.
func MapChains(chains []core.FailureChain, from, to *Dialect) (mapped []core.FailureChain, missing []string) {
	for _, fc := range chains {
		out := core.FailureChain{Name: fc.Name, Timeout: fc.Timeout}
		ok := true
		for _, p := range fc.Phrases {
			key, found := from.EventKeyOf(p)
			if !found {
				ok = false
				break
			}
			t, found := to.Template(key)
			if !found {
				ok = false
				break
			}
			out.Phrases = append(out.Phrases, t.ID)
		}
		if ok {
			mapped = append(mapped, out)
		} else {
			missing = append(missing, fc.Name)
		}
	}
	return mapped, missing
}
