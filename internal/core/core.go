// Package core defines the data model of the Aarohi reproduction — phrase
// templates, tokens, failure chains — and implements Algorithm 1 of the
// paper: the automatic, offline translation of a set of learned failure
// chains (FCs) into a token list and an LALR(1) rule set that the online
// predictor executes.
//
// In the paper's terms (§III): Phase 1 produces FCs; this package turns them
// into the grammar G = (N, T, P, S) of Table IV, factoring common subchains
// into non-terminal symbols, and compiles the grammar into parse tables via
// the internal/lalr generator.
package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/lalr"
)

// PhraseID identifies a distinct phrase template. IDs are assigned by the
// template inventory of a system (Phase 1) and are stable across training and
// prediction.
type PhraseID int

// Class labels a phrase the way Phase 1 labeling does (§III): benign phrases
// never participate in failure chains; unknown and erroneous phrases may;
// failed phrases are the terminal node-shutdown messages.
type Class uint8

const (
	// Benign phrases are normal operation messages, discarded by the scanner.
	Benign Class = iota
	// Unknown phrases are not known to be harmless (e.g. "DVS: verify
	// filesystem: *").
	Unknown
	// Erroneous phrases indicate faults (e.g. "Lnet: critical hardware
	// error: *").
	Erroneous
	// Failed phrases mark anomalous node shutdowns (e.g.
	// "cb_node_unavailable").
	Failed
)

// String returns the single-letter label the paper uses (Table III).
func (c Class) String() string {
	switch c {
	case Benign:
		return "B"
	case Unknown:
		return "U"
	case Erroneous:
		return "E"
	case Failed:
		return "F"
	}
	return "?"
}

// Template is one phrase template: a literal message skeleton in which '*'
// matches any run of characters (Table III's Phrase column).
type Template struct {
	ID      PhraseID `json:"id"`
	Pattern string   `json:"pattern"`
	Class   Class    `json:"class"`
}

// Token is the unit the scanner emits to the parser: a matched phrase with
// its arrival time and originating node (Table III's Token column).
type Token struct {
	Phrase PhraseID
	Time   time.Time
	Node   string
}

// FailureChain is a learned sequence of phrases leading to a node failure.
type FailureChain struct {
	// Name identifies the chain, e.g. "FC3".
	Name string `json:"name"`
	// Phrases is the ordered phrase sequence; the last phrase is typically a
	// Failed message.
	Phrases []PhraseID `json:"phrases"`
	// Timeout is the chain-specific ΔT threshold; 0 means the rule set
	// default applies.
	Timeout time.Duration `json:"timeout,omitempty"`
	// Gaps optionally annotates the expected ΔT between adjacent phrases
	// (the paper's Table III ΔT column): Gaps[i] is the typical delay
	// between Phrases[i] and Phrases[i+1], so len(Gaps) == len(Phrases)-1
	// when present. The online driver ignores them; the trainer records the
	// mean observed gaps and aarohivet checks them for consistency against
	// the reset timeout.
	Gaps []time.Duration `json:"gaps,omitempty"`
}

// DefaultTimeout is the ΔT threshold used when a chain does not carry its
// own: the paper suggests ~4 minutes, when ~93% of phrase inter-arrival
// times fall below that bound (§III, Fig. 5 discussion).
const DefaultTimeout = 4 * time.Minute

// Rule is one translated rule: the chain it came from plus its (possibly
// factored) right-hand side over grammar symbols.
type Rule struct {
	Chain string
	Rhs   []lalr.Symbol
}

// Subchain is a factored common subsequence promoted to a non-terminal.
type Subchain struct {
	Sym lalr.Symbol
	Rhs []lalr.Symbol
}

// RuleSet is the output of Algorithm 1: the token list, the rule list, the
// derived grammar, and its LALR(1) tables.
type RuleSet struct {
	Chains []FailureChain

	// TokenList enumerates the distinct phrases across all FCs in order of
	// first appearance (Algorithm 1 line 5); only these are tokenized online.
	TokenList []PhraseID

	// Rules holds the factored top-level rules, one per chain, in chain
	// order (tags in the grammar index into Chains).
	Rules []Rule

	// Subchains holds the factored non-terminals (empty when no common
	// subchains exist or factoring is disabled).
	Subchains []Subchain

	// Grammar and Tables are the compiled LALR(1) artifacts.
	Grammar *lalr.Grammar
	Tables  *lalr.Tables

	// FactoringFellBack reports that subchain factoring produced an LALR
	// conflict (possible for adversarial chain shapes, e.g. long cyclic
	// chains) and the plain one-production-per-chain grammar was used
	// instead. The recognized language is identical either way.
	FactoringFellBack bool

	// Timeout is the default ΔT threshold for chains without their own.
	Timeout time.Duration

	termOf   map[PhraseID]lalr.Symbol
	phraseOf []PhraseID // indexed by terminal symbol
}

// Options configure TranslateFCs.
type Options struct {
	// Timeout overrides DefaultTimeout when positive.
	Timeout time.Duration
	// DisableFactoring keeps the one-production-per-chain rule form (the
	// paper's P_FC of Table IV) instead of factoring common subchains into
	// non-terminals (P_LALR). Useful for ablation.
	DisableFactoring bool
	// MinSubchain is the minimum length of a common subchain worth factoring
	// (default 2).
	MinSubchain int
	// Vet, when non-nil, is invoked with the fully compiled rule set before
	// TranslateFCs returns; a non-nil error rejects the rule set and fails
	// the compile. internal/vet's CompileHook wires the static-analysis
	// suite here so fatally flawed chain sets never reach deployment.
	Vet func(*RuleSet) error
}

// TranslateFCs implements Algorithm 1: it validates the chains, forms the
// token and rule lists, factors common subchains into non-terminals, and
// compiles the LALR(1) tables.
func TranslateFCs(chains []FailureChain, opts Options) (*RuleSet, error) {
	rs, err := buildRuleSet(chains, opts)
	if err != nil {
		return nil, err
	}
	tables, err := lalr.BuildTables(rs.Grammar)
	if err != nil {
		if !opts.DisableFactoring {
			// Factoring introduced a conflict (possible with adversarial
			// chain shapes); the plain one-production-per-chain grammar is
			// always conflict-free for distinct chains, so fall back.
			fallback := opts
			fallback.DisableFactoring = true
			fallback.Vet = nil // vet once, on the final rule set
			rs, ferr := TranslateFCs(chains, fallback)
			if ferr != nil {
				return rs, ferr
			}
			rs.FactoringFellBack = true
			if opts.Vet != nil {
				if verr := opts.Vet(rs); verr != nil {
					return nil, fmt.Errorf("core: vet rejected rule set: %w", verr)
				}
			}
			return rs, nil
		}
		return nil, fmt.Errorf("core: building LALR tables: %w", err)
	}
	rs.Tables = tables
	if opts.Vet != nil {
		if verr := opts.Vet(rs); verr != nil {
			return nil, fmt.Errorf("core: vet rejected rule set: %w", verr)
		}
	}
	return rs, nil
}

// GrammarConflicts runs Algorithm 1 up to grammar construction and returns
// the LALR(1) conflicts of the *uncompiled* grammar, without the automatic
// factoring fallback TranslateFCs applies. The returned rule set carries the
// token list, rules, subchains and Grammar, but no Tables. This is the
// diagnostic entry point aarohivet's grammar-health check uses to surface
// conflicts that TranslateFCs would silently paper over by falling back.
func GrammarConflicts(chains []FailureChain, opts Options) (*RuleSet, []lalr.Conflict, error) {
	rs, err := buildRuleSet(chains, opts)
	if err != nil {
		return nil, nil, err
	}
	return rs, lalr.Conflicts(rs.Grammar), nil
}

// buildRuleSet validates the chains and performs Algorithm 1 through grammar
// construction, leaving table generation to the caller.
func buildRuleSet(chains []FailureChain, opts Options) (*RuleSet, error) {
	if len(chains) == 0 {
		return nil, fmt.Errorf("core: no failure chains")
	}
	seenName := map[string]bool{}
	seenSeq := map[string]string{}
	for i, fc := range chains {
		if fc.Name == "" {
			return nil, fmt.Errorf("core: chain %d has no name", i)
		}
		if seenName[fc.Name] {
			return nil, fmt.Errorf("core: duplicate chain name %q", fc.Name)
		}
		seenName[fc.Name] = true
		if len(fc.Phrases) == 0 {
			return nil, fmt.Errorf("core: chain %q is empty", fc.Name)
		}
		if len(fc.Gaps) != 0 && len(fc.Gaps) != len(fc.Phrases)-1 {
			return nil, fmt.Errorf("core: chain %q has %d gap annotations for %d phrases (want %d)",
				fc.Name, len(fc.Gaps), len(fc.Phrases), len(fc.Phrases)-1)
		}
		key := seqKey(fc.Phrases)
		if prev, dup := seenSeq[key]; dup {
			return nil, fmt.Errorf("core: chains %q and %q have identical phrase sequences", prev, fc.Name)
		}
		seenSeq[key] = fc.Name
	}

	rs := &RuleSet{
		Chains:  append([]FailureChain(nil), chains...),
		Timeout: DefaultTimeout,
		termOf:  map[PhraseID]lalr.Symbol{},
	}
	if opts.Timeout > 0 {
		rs.Timeout = opts.Timeout
	}
	minSub := opts.MinSubchain
	if minSub < 2 {
		minSub = 2
	}

	// Algorithm 1 lines 2–9: token list and unique chain rules.
	rs.phraseOf = []PhraseID{-1} // terminal 0 is EOF
	for _, fc := range chains {
		for _, p := range fc.Phrases {
			if _, ok := rs.termOf[p]; !ok {
				sym := lalr.Symbol(len(rs.phraseOf))
				rs.termOf[p] = sym
				rs.phraseOf = append(rs.phraseOf, p)
				rs.TokenList = append(rs.TokenList, p)
			}
		}
	}
	numTerminals := len(rs.phraseOf)

	rules := make([][]lalr.Symbol, len(chains))
	for i, fc := range chains {
		rhs := make([]lalr.Symbol, len(fc.Phrases))
		for j, p := range fc.Phrases {
			rhs[j] = rs.termOf[p]
		}
		rules[i] = rhs
	}

	// Algorithm 1 lines 11–21: derive LALR(1) rules by substituting common
	// subchains with non-terminals. Non-terminals carry exactly one
	// production each, so the language of every rule is preserved verbatim.
	nextSym := lalr.Symbol(numTerminals) // start symbol placed first
	startSym := nextSym
	nextSym++
	var subchains []Subchain
	if !opts.DisableFactoring {
		for {
			sub := longestCommonSubchain(rules, minSub)
			if sub == nil {
				break
			}
			b := Subchain{Sym: nextSym, Rhs: sub}
			nextSym++
			subchains = append(subchains, b)
			for i := range rules {
				rules[i] = replaceAll(rules[i], sub, b.Sym)
			}
		}
	}

	// Assemble the grammar: Start → rule_i (Tag=i), plus subchain defs.
	names := make([]string, int(nextSym))
	names[0] = "$eof"
	for sym := 1; sym < numTerminals; sym++ {
		names[sym] = fmt.Sprintf("p%d", rs.phraseOf[sym])
	}
	names[startSym] = "FCs"
	for i, b := range subchains {
		names[b.Sym] = fmt.Sprintf("B%d", i+1)
	}

	var prods []lalr.Production
	for i, rhs := range rules {
		prods = append(prods, lalr.Production{Lhs: startSym, Rhs: rhs, Tag: i})
		rs.Rules = append(rs.Rules, Rule{Chain: chains[i].Name, Rhs: rhs})
	}
	for _, b := range subchains {
		prods = append(prods, lalr.Production{Lhs: b.Sym, Rhs: b.Rhs, Tag: -1})
	}
	rs.Subchains = subchains

	g, err := lalr.New(numTerminals, startSym, prods, names)
	if err != nil {
		return nil, fmt.Errorf("core: building grammar: %w", err)
	}
	rs.Grammar = g
	return rs, nil
}

// Term returns the grammar terminal for a phrase, or (0, false) when the
// phrase appears in no chain (and is thus discarded online).
func (rs *RuleSet) Term(p PhraseID) (lalr.Symbol, bool) {
	s, ok := rs.termOf[p]
	return s, ok
}

// Phrase returns the phrase for a grammar terminal.
func (rs *RuleSet) Phrase(s lalr.Symbol) PhraseID {
	if s <= 0 || int(s) >= len(rs.phraseOf) {
		return -1
	}
	return rs.phraseOf[s]
}

// ChainTimeout returns the ΔT threshold in effect for chain i.
func (rs *RuleSet) ChainTimeout(i int) time.Duration {
	if i >= 0 && i < len(rs.Chains) && rs.Chains[i].Timeout > 0 {
		return rs.Chains[i].Timeout
	}
	return rs.Timeout
}

// MaxTimeout returns the largest ΔT threshold across all chains (at least
// the rule-set default). The online driver abandons a partial parse only
// past this bound: mid-parse the chain identity can be ambiguous (shared
// prefixes), so the laxest applicable threshold is the safe one — a
// too-eager reset would cut a slower chain that is still valid.
func (rs *RuleSet) MaxTimeout() time.Duration {
	m := rs.Timeout
	for i := range rs.Chains {
		if t := rs.ChainTimeout(i); t > m {
			m = t
		}
	}
	return m
}

// Relevant reports whether a phrase participates in any chain.
func (rs *RuleSet) Relevant(p PhraseID) bool {
	_, ok := rs.termOf[p]
	return ok
}

// DumpRules renders the derived productions in the style of Table IV.
func (rs *RuleSet) DumpRules() string {
	var sb strings.Builder
	for i, r := range rs.Rules {
		fmt.Fprintf(&sb, "S → ")
		writeSyms(&sb, rs.Grammar, r.Rhs)
		fmt.Fprintf(&sb, "   ; %s (FC rule %d)\n", r.Chain, i)
	}
	for _, b := range rs.Subchains {
		fmt.Fprintf(&sb, "%s → ", rs.Grammar.Name(b.Sym))
		writeSyms(&sb, rs.Grammar, b.Rhs)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func writeSyms(sb *strings.Builder, g *lalr.Grammar, syms []lalr.Symbol) {
	sb.WriteByte('(')
	for i, s := range syms {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(g.Name(s))
	}
	sb.WriteByte(')')
}

func seqKey(ps []PhraseID) string {
	var sb strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&sb, "%d,", p)
	}
	return sb.String()
}

// longestCommonSubchain finds the longest contiguous symbol sequence of
// length ≥ minLen occurring in at least two distinct positions across the
// rules (in two rules, or twice in one). Ties break toward the sequence with
// the most occurrences, then lexicographically for determinism. Returns nil
// when none exists.
func longestCommonSubchain(rules [][]lalr.Symbol, minLen int) []lalr.Symbol {
	// Collect counts of all subchains up to the max rule length. Rule sets
	// are small (tens of chains × tens of phrases), so the quadratic
	// enumeration is fine and keeps the code obvious.
	maxLen := 0
	for _, r := range rules {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	for length := maxLen; length >= minLen; length-- {
		counts := map[string]int{}
		reps := map[string][]lalr.Symbol{}
		for _, r := range rules {
			// Count non-overlapping occurrences per rule position set; a
			// subchain must appear at ≥ 2 positions overall to be worth a
			// non-terminal.
			for i := 0; i+length <= len(r); i++ {
				sub := r[i : i+length]
				key := symKey(sub)
				counts[key]++
				if _, ok := reps[key]; !ok {
					reps[key] = append([]lalr.Symbol(nil), sub...)
				}
			}
		}
		var bestKey string
		for key, c := range counts {
			if c < 2 {
				continue
			}
			if bestKey == "" || c > counts[bestKey] || (c == counts[bestKey] && key < bestKey) {
				bestKey = key
			}
		}
		if bestKey != "" {
			return reps[bestKey]
		}
	}
	return nil
}

func symKey(syms []lalr.Symbol) string {
	var sb strings.Builder
	for _, s := range syms {
		fmt.Fprintf(&sb, "%d,", s)
	}
	return sb.String()
}

// replaceAll substitutes every non-overlapping occurrence of sub in rhs with
// sym, scanning left to right.
func replaceAll(rhs, sub []lalr.Symbol, sym lalr.Symbol) []lalr.Symbol {
	var out []lalr.Symbol
	for i := 0; i < len(rhs); {
		if i+len(sub) <= len(rhs) && symsEqual(rhs[i:i+len(sub)], sub) {
			out = append(out, sym)
			i += len(sub)
		} else {
			out = append(out, rhs[i])
			i++
		}
	}
	return out
}

func symsEqual(a, b []lalr.Symbol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PrefixChains reports pairs (i, j) where chain i's phrase sequence is a
// proper prefix of chain j's. Under eager acceptance the shorter chain is
// reported first; callers may want to merge or reorder such chains.
func PrefixChains(chains []FailureChain) [][2]int {
	var out [][2]int
	for i, a := range chains {
		for j, b := range chains {
			if i == j || len(a.Phrases) >= len(b.Phrases) {
				continue
			}
			prefix := true
			for k, p := range a.Phrases {
				if b.Phrases[k] != p {
					prefix = false
					break
				}
			}
			if prefix {
				out = append(out, [2]int{i, j})
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x][0] != out[y][0] {
			return out[x][0] < out[y][0]
		}
		return out[x][1] < out[y][1]
	})
	return out
}

// WriteChains serializes chains as JSON (the on-disk format produced by
// Phase 1 and consumed by the rule translator).
func WriteChains(w io.Writer, chains []FailureChain) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chains)
}

// ReadChains deserializes chains from JSON.
func ReadChains(r io.Reader) ([]FailureChain, error) {
	var chains []FailureChain
	if err := json.NewDecoder(r).Decode(&chains); err != nil {
		return nil, fmt.Errorf("core: decoding chains: %w", err)
	}
	return chains, nil
}

// WriteTemplates serializes a template inventory as JSON.
func WriteTemplates(w io.Writer, ts []Template) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}

// ReadTemplates deserializes a template inventory from JSON.
func ReadTemplates(r io.Reader) ([]Template, error) {
	var ts []Template
	if err := json.NewDecoder(r).Decode(&ts); err != nil {
		return nil, fmt.Errorf("core: decoding templates: %w", err)
	}
	return ts, nil
}
