package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/lalr"
)

// tableIVChains returns FC1 and FC5 exactly as in Table IV of the paper.
func tableIVChains() []FailureChain {
	return []FailureChain{
		{Name: "FC1", Phrases: []PhraseID{176, 177, 178, 179, 180, 137}},
		{Name: "FC5", Phrases: []PhraseID{172, 177, 178, 193, 137}},
	}
}

func TestTranslateTableIV(t *testing.T) {
	rs, err := TranslateFCs(tableIVChains(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Token list: unique phrases in order of first appearance.
	want := []PhraseID{176, 177, 178, 179, 180, 137, 172, 193}
	if len(rs.TokenList) != len(want) {
		t.Fatalf("TokenList = %v, want %v", rs.TokenList, want)
	}
	for i, p := range want {
		if rs.TokenList[i] != p {
			t.Fatalf("TokenList = %v, want %v", rs.TokenList, want)
		}
	}
	// The common subchain (177 178) must be factored into a non-terminal.
	if len(rs.Subchains) == 0 {
		t.Fatal("no subchains factored; Table IV derives B → (177 178)")
	}
	found := false
	for _, b := range rs.Subchains {
		if len(b.Rhs) == 2 && rs.Phrase(b.Rhs[0]) == 177 && rs.Phrase(b.Rhs[1]) == 178 {
			found = true
		}
	}
	if !found {
		t.Errorf("factored subchains %v do not include (177 178)", rs.Subchains)
	}
	// Both chains parse to their own tags.
	for i, fc := range rs.Chains {
		syms := make([]lalr.Symbol, len(fc.Phrases))
		for j, p := range fc.Phrases {
			s, ok := rs.Term(p)
			if !ok {
				t.Fatalf("phrase %d not in token list", p)
			}
			syms[j] = s
		}
		tag, ok := rs.Tables.Parse(syms)
		if !ok || tag != i {
			t.Errorf("chain %s parse = (%d,%v), want (%d,true)", fc.Name, tag, ok, i)
		}
	}
}

func TestTranslateNoFactoring(t *testing.T) {
	rs, err := TranslateFCs(tableIVChains(), Options{DisableFactoring: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Subchains) != 0 {
		t.Errorf("factoring disabled but got subchains %v", rs.Subchains)
	}
	for i, r := range rs.Rules {
		if len(r.Rhs) != len(rs.Chains[i].Phrases) {
			t.Errorf("rule %d factored despite DisableFactoring", i)
		}
	}
	// Language must be identical to the factored form.
	for i, fc := range rs.Chains {
		syms := phrasesToSyms(t, rs, fc.Phrases)
		if tag, ok := rs.Tables.Parse(syms); !ok || tag != i {
			t.Errorf("chain %s parse = (%d,%v)", fc.Name, tag, ok)
		}
	}
}

func phrasesToSyms(t *testing.T, rs *RuleSet, ps []PhraseID) []lalr.Symbol {
	t.Helper()
	syms := make([]lalr.Symbol, len(ps))
	for i, p := range ps {
		s, ok := rs.Term(p)
		if !ok {
			t.Fatalf("phrase %d missing", p)
		}
		syms[i] = s
	}
	return syms
}

func TestTranslateValidation(t *testing.T) {
	cases := []struct {
		name   string
		chains []FailureChain
	}{
		{"empty set", nil},
		{"unnamed", []FailureChain{{Phrases: []PhraseID{1}}}},
		{"empty chain", []FailureChain{{Name: "FC1"}}},
		{"dup name", []FailureChain{
			{Name: "FC1", Phrases: []PhraseID{1, 2}},
			{Name: "FC1", Phrases: []PhraseID{3, 4}},
		}},
		{"dup sequence", []FailureChain{
			{Name: "FC1", Phrases: []PhraseID{1, 2}},
			{Name: "FC2", Phrases: []PhraseID{1, 2}},
		}},
	}
	for _, tc := range cases {
		if _, err := TranslateFCs(tc.chains, Options{}); err == nil {
			t.Errorf("%s: TranslateFCs succeeded, want error", tc.name)
		}
	}
}

func TestChainTimeout(t *testing.T) {
	chains := []FailureChain{
		{Name: "FC1", Phrases: []PhraseID{1, 2}, Timeout: 90 * time.Second},
		{Name: "FC2", Phrases: []PhraseID{3, 4}},
	}
	rs, err := TranslateFCs(chains, Options{Timeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.ChainTimeout(0); got != 90*time.Second {
		t.Errorf("ChainTimeout(0) = %v, want 90s", got)
	}
	if got := rs.ChainTimeout(1); got != 2*time.Minute {
		t.Errorf("ChainTimeout(1) = %v, want 2m", got)
	}
	if got := rs.ChainTimeout(99); got != 2*time.Minute {
		t.Errorf("ChainTimeout(out of range) = %v, want default", got)
	}
	rs2, err := TranslateFCs(chains, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rs2.ChainTimeout(1); got != DefaultTimeout {
		t.Errorf("default ChainTimeout = %v, want %v", got, DefaultTimeout)
	}
}

func TestRelevantAndTerm(t *testing.T) {
	rs, err := TranslateFCs(tableIVChains(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Relevant(177) {
		t.Error("177 should be relevant")
	}
	if rs.Relevant(999) {
		t.Error("999 should not be relevant")
	}
	if _, ok := rs.Term(999); ok {
		t.Error("Term(999) should fail")
	}
	if p := rs.Phrase(0); p != -1 {
		t.Errorf("Phrase(EOF) = %d, want -1", p)
	}
	if p := rs.Phrase(lalr.Symbol(9999)); p != -1 {
		t.Errorf("Phrase(out of range) = %d, want -1", p)
	}
	// Round trip.
	s, _ := rs.Term(176)
	if rs.Phrase(s) != 176 {
		t.Error("Term/Phrase round trip failed")
	}
}

func TestDumpRules(t *testing.T) {
	rs, err := TranslateFCs(tableIVChains(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dump := rs.DumpRules()
	for _, want := range []string{"FC1", "FC5", "B1", "p177", "p178"} {
		if !strings.Contains(dump, want) {
			t.Errorf("DumpRules missing %q:\n%s", want, dump)
		}
	}
}

func TestPrefixChains(t *testing.T) {
	chains := []FailureChain{
		{Name: "A", Phrases: []PhraseID{1, 2}},
		{Name: "B", Phrases: []PhraseID{1, 2, 3}},
		{Name: "C", Phrases: []PhraseID{4, 5}},
	}
	got := PrefixChains(chains)
	if len(got) != 1 || got[0] != [2]int{0, 1} {
		t.Errorf("PrefixChains = %v, want [[0 1]]", got)
	}
	if got := PrefixChains(chains[2:]); len(got) != 0 {
		t.Errorf("PrefixChains(no prefixes) = %v", got)
	}
}

func TestChainsJSONRoundTrip(t *testing.T) {
	chains := tableIVChains()
	chains[0].Timeout = 3 * time.Minute
	var buf bytes.Buffer
	if err := WriteChains(&buf, chains); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChains(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(chains) {
		t.Fatalf("round trip count = %d, want %d", len(got), len(chains))
	}
	for i := range got {
		if got[i].Name != chains[i].Name || got[i].Timeout != chains[i].Timeout ||
			len(got[i].Phrases) != len(chains[i].Phrases) {
			t.Errorf("chain %d mismatch: %+v vs %+v", i, got[i], chains[i])
		}
	}
	if _, err := ReadChains(strings.NewReader("not json")); err == nil {
		t.Error("ReadChains(garbage) succeeded")
	}
}

func TestTemplatesJSONRoundTrip(t *testing.T) {
	ts := []Template{
		{ID: 140, Pattern: "DVS: verify filesystem: *", Class: Unknown},
		{ID: 127, Pattern: "cb_node_unavailable*", Class: Failed},
	}
	var buf bytes.Buffer
	if err := WriteTemplates(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTemplates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ts[0] || got[1] != ts[1] {
		t.Errorf("round trip = %+v, want %+v", got, ts)
	}
	if _, err := ReadTemplates(strings.NewReader("{")); err == nil {
		t.Error("ReadTemplates(garbage) succeeded")
	}
}

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{Benign, "B"}, {Unknown, "U"}, {Erroneous, "E"}, {Failed, "F"}, {Class(99), "?"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", tt.c, got, tt.want)
		}
	}
}

// Property: for random chain sets, translation succeeds and every original
// chain parses to its own tag, factored or not — the factoring preserves
// each rule's language exactly.
func TestTranslatePreservesChains(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 150; iter++ {
		n := 1 + rng.Intn(6)
		chains := make([]FailureChain, 0, n)
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			l := 2 + rng.Intn(10)
			ps := make([]PhraseID, l)
			for j := range ps {
				ps[j] = PhraseID(100 + rng.Intn(12))
			}
			key := seqKey(ps)
			if seen[key] {
				continue
			}
			seen[key] = true
			chains = append(chains, FailureChain{Name: chainName(len(chains)), Phrases: ps})
		}
		if len(chains) == 0 {
			continue
		}
		for _, factoring := range []bool{false, true} {
			rs, err := TranslateFCs(chains, Options{DisableFactoring: !factoring})
			if err != nil {
				t.Fatalf("iter %d factoring=%v: %v", iter, factoring, err)
			}
			for i, fc := range chains {
				syms := phrasesToSyms(t, rs, fc.Phrases)
				tag, ok := rs.Tables.Parse(syms)
				if !ok {
					t.Fatalf("iter %d factoring=%v: chain %d rejected (chains=%v)\nrules:\n%s",
						iter, factoring, i, chains, rs.DumpRules())
				}
				// With factoring, distinct chains can become mergeable
				// (crossovers); the tag must still identify *a* chain whose
				// sequence equals the input — for non-crossover inputs that
				// is chain i itself.
				if tag != i && seqKey(chains[tag].Phrases) != seqKey(fc.Phrases) {
					t.Fatalf("iter %d factoring=%v: chain %d parsed with tag %d", iter, factoring, i, tag)
				}
			}
		}
	}
}

func chainName(i int) string {
	return "FC" + string(rune('A'+i))
}

// Property: a random non-chain sequence (differing from every chain) is
// rejected by the unfactored grammar.
func TestTranslateRejectsNonChains(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	chains := []FailureChain{
		{Name: "FC1", Phrases: []PhraseID{1, 2, 3, 4}},
		{Name: "FC2", Phrases: []PhraseID{2, 3, 5}},
		{Name: "FC3", Phrases: []PhraseID{1, 5, 5, 2, 4}},
	}
	rs, err := TranslateFCs(chains, Options{DisableFactoring: true})
	if err != nil {
		t.Fatal(err)
	}
	isChain := map[string]bool{}
	for _, fc := range chains {
		isChain[seqKey(fc.Phrases)] = true
	}
	for iter := 0; iter < 500; iter++ {
		l := 1 + rng.Intn(7)
		ps := make([]PhraseID, l)
		for j := range ps {
			ps[j] = PhraseID(1 + rng.Intn(5))
		}
		if isChain[seqKey(ps)] {
			continue
		}
		syms := make([]lalr.Symbol, l)
		valid := true
		for j, p := range ps {
			s, ok := rs.Term(p)
			if !ok {
				valid = false
				break
			}
			syms[j] = s
		}
		if !valid {
			continue
		}
		if tag, ok := rs.Tables.Parse(syms); ok {
			t.Fatalf("non-chain %v accepted with tag %d", ps, tag)
		}
	}
}

// conflictChains is a chain set whose factored grammar has a genuine LALR(1)
// shift/reduce conflict: factoring yields S → B1 B2 | B2 1 3 with
// B1 → 1 2 1 2 and B2 → 1 2, so after "1 2" the parser cannot decide between
// shifting toward B1 and reducing B2 (lookahead 1 does both). TranslateFCs
// falls back to the unfactored grammar; GrammarConflicts surfaces the
// conflicts themselves.
func conflictChains() []FailureChain {
	return []FailureChain{
		{Name: "FC-cyc", Phrases: []PhraseID{1, 2, 1, 2, 1, 2}},
		{Name: "FC-mix", Phrases: []PhraseID{1, 2, 1, 3}},
	}
}

func TestGrammarConflicts(t *testing.T) {
	rs, conflicts, err := GrammarConflicts(conflictChains(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) == 0 {
		t.Fatal("GrammarConflicts = none, want a factoring-induced conflict")
	}
	if rs.Grammar == nil {
		t.Fatal("rule set has no grammar")
	}
	if rs.Tables != nil {
		t.Error("diagnostic rule set should not carry tables")
	}
	for _, c := range conflicts {
		if len(c.Prods) == 0 {
			t.Errorf("conflict %v carries no production indices", c)
		}
		for _, p := range c.Prods {
			if p < 0 || p >= rs.Grammar.NumProductions() {
				t.Errorf("conflict production index %d out of range", p)
			}
		}
	}

	// The compile path falls back and still recognizes both chains.
	full, err := TranslateFCs(conflictChains(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.FactoringFellBack {
		t.Error("TranslateFCs did not report the factoring fallback")
	}

	// A clean chain set reports no conflicts.
	_, conflicts, err = GrammarConflicts(tableIVChains(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Errorf("clean chains report conflicts: %v", conflicts)
	}
}

func TestGapAnnotationValidation(t *testing.T) {
	chains := []FailureChain{{
		Name:    "FC1",
		Phrases: []PhraseID{1, 2, 3},
		Gaps:    []time.Duration{time.Second}, // want 2
	}}
	if _, err := TranslateFCs(chains, Options{}); err == nil {
		t.Fatal("TranslateFCs accepted a malformed gap annotation")
	}
	chains[0].Gaps = []time.Duration{time.Second, 2 * time.Second}
	if _, err := TranslateFCs(chains, Options{}); err != nil {
		t.Fatalf("TranslateFCs rejected a well-formed gap annotation: %v", err)
	}
}

func TestVetHook(t *testing.T) {
	chains := tableIVChains()
	var sawTables bool
	rs, err := TranslateFCs(chains, Options{Vet: func(rs *RuleSet) error {
		sawTables = rs.Tables != nil
		return nil
	}})
	if err != nil || rs == nil {
		t.Fatalf("TranslateFCs with passing vet: %v", err)
	}
	if !sawTables {
		t.Error("vet hook ran before tables were built")
	}

	wantErr := "seeded rejection"
	_, err = TranslateFCs(chains, Options{Vet: func(*RuleSet) error {
		return fmt.Errorf(wantErr)
	}})
	if err == nil || !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("TranslateFCs err = %v, want vet rejection", err)
	}

	// On the factoring fallback path the hook runs once, on the final set.
	calls := 0
	rs, err = TranslateFCs(conflictChains(), Options{Vet: func(rs *RuleSet) error {
		calls++
		if !rs.FactoringFellBack {
			t.Error("vet hook saw a pre-fallback rule set")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("vet hook ran %d times, want 1", calls)
	}
	if !rs.FactoringFellBack {
		t.Error("fallback not reported")
	}
}
