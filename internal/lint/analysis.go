// Package lint is aarohi's source-invariant linter: a small, dependency-free
// re-implementation of the golang.org/x/tools/go/analysis shape (Analyzer,
// Pass, Diagnostic) plus the analyzers that encode this repository's runtime
// invariants — zero-allocation hot paths, lock hygiene around blocking
// operations, mandatory Close of project resources, and never-discarded
// durability errors.
//
// The paper's pitch is feasibility: prediction must keep up with the live log
// rate. Those are properties of the *code* (no allocation per token, no fsync
// under a mutex, no dropped WAL error), and they rot silently under ordinary
// review. internal/vet checks compiled models; this package checks the Go
// source that runs them. cmd/aarohilint is the multichecker front end, wired
// into scripts/check.sh and CI.
//
// Suppressions: a comment of the form
//
//	//aarohi:allow <analyzer> <reason>
//
// on the flagged line or the line above it silences that analyzer there. A
// reason is mandatory — the comment is the audit trail for a deliberate
// exception (e.g. the WAL's fsync-under-mutex on segment roll).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name is the analyzer's identifier, used on the command line, in
	// diagnostics and in //aarohi:allow suppressions.
	Name string
	// Doc is the one-paragraph description shown by aarohilint -list.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// A Pass is one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module is the import path of the module the package belongs to (empty
	// for packages outside any module). mustclose uses it to decide what a
	// "project" type is.
	Module string

	diags *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Preorder walks every file of the pass in depth-first order, calling fn for
// each node.
func (p *Pass) Preorder(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Hotpath, LockBlock, MustClose, Durable, Layering}
}

// Select resolves a comma-separated analyzer-name list against All. An empty
// spec selects everything.
func Select(spec string) ([]*Analyzer, error) {
	if spec == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the analyzer names in suite order.
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// Run applies the analyzers to the loaded packages and returns the surviving
// diagnostics sorted by position. Findings silenced by //aarohi:allow
// comments are dropped here, after every analyzer has run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Module:    pkg.Module,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	diags = applySuppressions(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// allowDirective is the suppression-comment prefix.
const allowDirective = "//aarohi:allow "

// applySuppressions drops diagnostics covered by an //aarohi:allow comment on
// the same line or the line immediately above.
func applySuppressions(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	// allowed maps file -> line -> set of analyzer names allowed there.
	allowed := map[string]map[int]map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, strings.TrimSpace(allowDirective))
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						// No reason given: the directive is ignored, so the
						// finding it meant to silence still surfaces.
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					m := allowed[pos.Filename]
					if m == nil {
						m = map[int]map[string]bool{}
						allowed[pos.Filename] = m
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if m[line] == nil {
							m[line] = map[string]bool{}
						}
						m[line][fields[0]] = true
					}
				}
			}
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		if m := allowed[d.Pos.Filename]; m != nil && m[d.Pos.Line][d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// --- shared type helpers ---

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// namedOrPointee unwraps pointers and returns the named type beneath, if any.
func namedOrPointee(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// calleeFunc resolves the *types.Func a call expression invokes (method or
// package function), or nil for conversions, builtins and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		if obj, ok := info.Uses[fun.Sel]; ok {
			f, _ := obj.(*types.Func)
			return f
		}
	case *ast.Ident:
		if obj, ok := info.Uses[fun]; ok {
			f, _ := obj.(*types.Func)
			return f
		}
	}
	return nil
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// funcPkgPath returns the import path of the package a function belongs to
// ("" for builtins).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// recvNamed returns the named type of f's receiver (unwrapping a pointer), or
// nil when f is not a method.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOrPointee(sig.Recv().Type())
}
