// Package plain is a module package whose name matches no layer — everything
// may import it except the ring, which admits only core.
package plain

const Marker = "plain"
