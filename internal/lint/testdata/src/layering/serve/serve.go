// Package serve is the fixture composition root: unrestricted, it may import
// every layer — its role here is to be a denied target for the others.
package serve

import (
	_ "repro/internal/lint/testdata/src/layering/core"
	_ "repro/internal/lint/testdata/src/layering/shard"
)
