// Package ring is the fixture for the ring rule: nothing from the module
// above internal/core, classified layer or not.
package ring

import (
	_ "container/ring" // stdlib package named ring: outside the module, never classified

	_ "repro/internal/lint/testdata/src/layering/core"
	_ "repro/internal/lint/testdata/src/layering/plain" // want "ring must not import repro/internal/lint/testdata/src/layering/plain"
)
