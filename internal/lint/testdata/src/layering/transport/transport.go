// Package transport is the fixture for the transport rules: listeners know
// the daemon only through the Ingestor interface, so every layer package is
// off limits. Also exercises //aarohi:allow as the escape hatch.
package transport

import (
	_ "repro/internal/lint/testdata/src/layering/core"
	_ "repro/internal/lint/testdata/src/layering/lifecycle" // want "transport must not import lifecycle package"
	_ "repro/internal/lint/testdata/src/layering/pipeline"  // want "transport must not import pipeline package"
	//aarohi:allow layering fixture: prove the suppression silences the edge
	_ "repro/internal/lint/testdata/src/layering/shard"
)
