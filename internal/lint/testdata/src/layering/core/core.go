// Package core stands in for internal/core: the bottom of the DAG, importable
// from anywhere.
package core

// Marker anchors the package so blank imports resolve a real symbol table.
const Marker = "core"
