// Package shard is the fixture for the shard rules: shards may use the ring
// and domain packages but never the layers that drive them.
package shard

import (
	_ "repro/internal/lint/testdata/src/layering/pipeline" // want "shard must not import pipeline package"
	_ "repro/internal/lint/testdata/src/layering/ring"
)
