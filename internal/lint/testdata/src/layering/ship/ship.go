// Package ship is the fixture for the ship rules: WAL shipping moves journal
// bytes between peers and must not know the daemon that owns them.
package ship

import (
	_ "repro/internal/lint/testdata/src/layering/core"
	_ "repro/internal/lint/testdata/src/layering/pipeline" // want "ship must not import pipeline package"
	_ "repro/internal/lint/testdata/src/layering/shard"    // want "ship must not import shard package"
)
