// Package lifecycle is the fixture for the lifecycle rules: it coordinates
// shards and must not reach the ingest path.
package lifecycle

import (
	_ "repro/internal/lint/testdata/src/layering/pipeline" // want "lifecycle must not import pipeline package"
	_ "repro/internal/lint/testdata/src/layering/shard"
)
