// Package gossip is the fixture for the gossip rules: membership may sit on
// the ring and domain packages but never reach a serve layer, with
// //aarohi:allow as the escape hatch.
package gossip

import (
	_ "repro/internal/lint/testdata/src/layering/core"
	_ "repro/internal/lint/testdata/src/layering/ring"
	_ "repro/internal/lint/testdata/src/layering/serve"     // want "gossip must not import serve package"
	_ "repro/internal/lint/testdata/src/layering/transport" // want "gossip must not import transport package"
	//aarohi:allow layering fixture: prove the suppression silences the edge
	_ "repro/internal/lint/testdata/src/layering/lifecycle"
)
