// Package pipeline is the fixture for the pipeline rules: the batcher drives
// its Sink interface and must not know the router's hash ring.
package pipeline

import (
	_ "repro/internal/lint/testdata/src/layering/core"
	_ "repro/internal/lint/testdata/src/layering/ring" // want "pipeline must not import ring package"
)
