// Package mustclose is the fixture for the mustclose analyzer: project
// Closer-typed values created in a function must be closed or escape.
package mustclose

import "os"

// journal is a project closer type (declared in this module).
type journal struct{ open bool }

func openJournal() (*journal, error) { return &journal{open: true}, nil }

func (j *journal) Close() error { j.open = false; return nil }

func (j *journal) Append(p []byte) error { return nil }

// manager has Shutdown rather than Close on the value side, plus Close —
// both release it.
type manager struct{}

func newManager() *manager         { return &manager{} }
func (m *manager) Close()          {}
func (m *manager) Shutdown() error { return nil }

type holder struct{ j *journal }

var global *journal

func leaked() error {
	j, err := openJournal() // want `journal created here is never closed`
	if err != nil {
		return err
	}
	return j.Append(nil)
}

func closedOnDefer() error {
	j, err := openJournal()
	if err != nil {
		return err
	}
	defer j.Close()
	return j.Append(nil)
}

func closedExplicitly() error {
	m := newManager()
	m.Close()
	return nil
}

func shutdownCounts() error {
	m := newManager()
	return m.Shutdown()
}

func escapesByReturn() (*journal, error) {
	return openJournal()
}

func escapesByReturnVar() (*journal, error) {
	j, err := openJournal()
	if err != nil {
		return nil, err
	}
	return j, nil
}

func consume(j *journal) {}

func escapesByArgument() error {
	j, err := openJournal()
	if err != nil {
		return err
	}
	consume(j)
	return nil
}

func escapesByField() (*holder, error) {
	j, err := openJournal()
	if err != nil {
		return nil, err
	}
	h := &holder{}
	h.j = j
	return h, nil
}

func escapesByCompositeLit() (*holder, error) {
	j, err := openJournal()
	if err != nil {
		return nil, err
	}
	return &holder{j: j}, nil
}

func escapesByGlobal() error {
	j, err := openJournal()
	if err != nil {
		return err
	}
	global = j
	return nil
}

func nonProjectTypesIgnored() error {
	f, err := os.Open("/dev/null") // os.File is not a project type
	if err != nil {
		return err
	}
	_ = f
	return nil
}

func leakedManager() {
	m := newManager() // want `manager created here is never closed`
	_ = m
}

type registry struct{ m *manager }

// manager is an accessor, not a constructor: the registry still owns the
// value, so the caller takes on no close obligation.
func (r *registry) manager() *manager { return r.m }

func accessorsAreNotCreations(r *registry) {
	m := r.manager()
	_ = m
}
