// Package lockblock is the fixture for the lockblock analyzer: no blocking
// operation (chan ops, I/O, fsync, sleep) while a mutex is held.
package lockblock

import (
	"os"
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	f    *os.File
	vals []int
}

func (s *server) sendUnderLock() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send blocks while s.mu is held`
	s.mu.Unlock()
}

func (s *server) recvUnderDeferredUnlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive blocks while s.mu is held`
}

func (s *server) sleepUnderRLock() {
	s.rw.RLock()
	time.Sleep(time.Millisecond) // want `time.Sleep blocks while s.rw is held`
	s.rw.RUnlock()
}

func (s *server) fsyncUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.Sync() // want `fsync under a held lock`
}

func (s *server) fileWriteUnderLock(p []byte) {
	s.mu.Lock()
	s.f.Write(p) // want `file I/O \(os.File.Write\) blocks`
	s.mu.Unlock()
}

func (s *server) openUnderLock() {
	s.mu.Lock()
	os.Open("/dev/null") // want `os.Open performs I/O while s.mu is held`
	s.mu.Unlock()
}

func (s *server) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select with no default case blocks`
	case v := <-s.ch:
		s.vals = append(s.vals, v)
	case s.ch <- 0:
	}
}

// --- non-findings ---

func (s *server) sendAfterUnlock() {
	s.mu.Lock()
	s.vals = append(s.vals, 1)
	s.mu.Unlock()
	s.ch <- 1 // lock released: fine
}

func (s *server) earlyReturnKeepsHeld() error {
	s.mu.Lock()
	if len(s.vals) == 0 {
		s.mu.Unlock()
		return nil
	}
	s.ch <- 1 // want `channel send blocks while s.mu is held`
	s.mu.Unlock()
	return nil
}

func (s *server) nonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default: // non-blocking: fine
	}
}

func (s *server) lockPerIteration() {
	for i := 0; i < 3; i++ {
		s.mu.Lock()
		s.vals = append(s.vals, i)
		s.mu.Unlock()
	}
	s.ch <- 1 // balanced inside the loop: fine
}

func (s *server) differentMutexes() {
	s.mu.Lock()
	s.vals = nil
	s.mu.Unlock()
	s.rw.Lock()
	s.vals = nil
	s.rw.Unlock()
	time.Sleep(time.Millisecond) // nothing held: fine
}

func (s *server) allowedFsync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//aarohi:allow lockblock segment roll must serialize the fsync with appends
	s.f.Sync()
}

func (s *server) deferredClosureRunsUnlocked() {
	s.mu.Lock()
	defer func() {
		s.ch <- 1 // runs after the unlock below: fine
	}()
	s.vals = nil
	s.mu.Unlock()
}
