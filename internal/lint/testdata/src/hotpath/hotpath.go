// Package hotpath is the fixture for the hotpath analyzer: functions
// annotated //aarohi:hotpath must not contain allocating constructs.
package hotpath

import (
	"errors"
	"fmt"
)

type token struct {
	id int
}

var sink any

// notAnnotated allocates freely: without the directive nothing is flagged.
func notAnnotated(b []byte) string {
	m := map[string]int{"x": 1}
	_ = m
	return fmt.Sprintf("%s", string(b))
}

//aarohi:hotpath
func conversions(b []byte, s string) int {
	x := string(b) // want `converts \[\]byte to string`
	y := []byte(s) // want `converts string to \[\]byte`
	return len(x) + len(y)
}

//aarohi:hotpath
func mapIndexExemption(m map[string]int, b []byte) int {
	return m[string(b)] // the compiler elides this copy; no finding
}

//aarohi:hotpath
func formatting(n int) {
	fmt.Println(n)       // want `calls fmt.Println` `boxes int into any`
	_ = errors.New("no") // want `calls errors.New`
}

//aarohi:hotpath
func literalsAndMakes() int {
	m := map[int]int{}    // want `allocates a map literal`
	s := []int{1, 2, 3}   // want `allocates a slice literal`
	t := make([]byte, 16) // want `calls make`
	p := new(token)       // want `calls new`
	return len(m) + len(s) + len(t) + p.id
}

//aarohi:hotpath
func closures() func() int {
	f := func() int { return 1 } // want `builds a closure`
	return f
}

func eat(v any) { sink = v }

//aarohi:hotpath
func boxing(t token) {
	eat(t) // want `boxes token into any`
}

//aarohi:hotpath
func boxingReturn(t token) any {
	return t // want `boxes token into any at return`
}

//aarohi:hotpath
func boxingSend(ch chan any, t token) {
	ch <- t // want `boxes token into any at channel send`
}

//aarohi:hotpath
func constantsAreFree() {
	eat("static") // constants box into read-only statics; no finding
}

//aarohi:hotpath
func cleanHot(b []byte, toks []token) (int, bool) {
	// Index loops, arithmetic, struct access, calls to non-allocating
	// helpers: the shape hot paths are supposed to have.
	n := 0
	for i := 0; i < len(b); i++ {
		n += int(b[i])
	}
	for _, t := range toks {
		n += t.id
	}
	return n, n > 0
}

//aarohi:hotpath
func allowed(b []byte) string {
	return string(b) //aarohi:allow hotpath ownership handoff requires the copy
}
