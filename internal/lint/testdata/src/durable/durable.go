// Package durable is the fixture for the durable analyzer: errors from WAL
// append/fsync/close and os.File.Sync may not be silently discarded.
package durable

import (
	"os"

	"repro/internal/lint/testdata/src/durable/wal"
)

func discards(l *wal.Log, f *os.File) {
	l.Append(nil)       // want `error from wal.Log.Append is discarded`
	l.Sync()            // want `error from wal.Log.Sync is discarded`
	l.TruncateBefore(1) // want `error from wal.Log.TruncateBefore is discarded`
	f.Sync()            // want `error from \(\*os.File\).Sync is discarded`
}

func discardsInDefer(l *wal.Log) {
	defer l.Close() // want `error from wal.Log.Close is discarded`
}

func discardsInGo(l *wal.Log) {
	go l.Sync() // want `error from wal.Log.Sync is discarded`
}

func discardsPackageFunc() {
	wal.WriteSnapshotFile("", 1, nil) // want `error from wal.WriteSnapshotFile is discarded`
}

// --- non-findings ---

func handled(l *wal.Log) error {
	if _, err := l.Append(nil); err != nil {
		return err
	}
	if err := l.Sync(); err != nil {
		return err
	}
	return l.Close()
}

func explicitDiscard(l *wal.Log) {
	_ = l.Sync() // best effort, visibly acknowledged: fine
}

func errorlessCallsIgnored(l *wal.Log, f *os.File) {
	l.LastIndex() // returns no error
	f.Name()      // not Sync
	_ = f.Close() // os.File.Close is not on the durability surface here
}
