// Package wal is a stub journal for the durable fixture: the analyzer keys
// on the package name, matching the real repro/internal/wal surface.
package wal

// Log is the stub journal.
type Log struct{}

func (l *Log) Append(p []byte) (uint64, error) { return 0, nil }
func (l *Log) Sync() error                     { return nil }
func (l *Log) Close() error                    { return nil }
func (l *Log) TruncateBefore(idx uint64) error { return nil }

// LastIndex returns no error; discarding its result is not a durability bug.
func (l *Log) LastIndex() uint64 { return 0 }

// WriteSnapshotFile is the stub of the snapshot container writer.
func WriteSnapshotFile(dir string, idx uint64, payload []byte) (string, error) {
	return "", nil
}
