package lint

import (
	"strings"
	"testing"
)

func TestHotpathFixture(t *testing.T) {
	RunFixture(t, Hotpath, "testdata/src/hotpath")
}

func TestLockBlockFixture(t *testing.T) {
	RunFixture(t, LockBlock, "testdata/src/lockblock")
}

func TestMustCloseFixture(t *testing.T) {
	RunFixture(t, MustClose, "testdata/src/mustclose")
}

func TestDurableFixture(t *testing.T) {
	RunFixture(t, Durable, "testdata/src/durable")
}

func TestLayeringFixture(t *testing.T) {
	// The layering fixture is a tree of sibling packages (one per layer), so
	// the pattern recurses where the single-package fixtures do not.
	RunFixture(t, Layering, "testdata/src/layering/...")
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := Select("hotpath, durable")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "hotpath" || two[1].Name != "durable" {
		t.Fatalf("Select(hotpath, durable) = %v", two)
	}
	if _, err := Select("nope"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("Select(nope) err = %v; want unknown-analyzer error", err)
	}
}

func TestParseWants(t *testing.T) {
	got, err := parseWants("// want \"one\" `two \\[x\\]`")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "one" || got[1] != `two \[x\]` {
		t.Fatalf("parseWants = %q", got)
	}
	if got, _ := parseWants("// plain comment"); got != nil {
		t.Fatalf("non-want comment parsed as %q", got)
	}
	if _, err := parseWants("// want unquoted"); err == nil {
		t.Fatal("unquoted want did not error")
	}
}

// TestLoadSelf loads this package — a smoke test that the export-data loader
// handles a real module package with project imports.
func TestLoadSelf(t *testing.T) {
	pkgs, err := Load("", []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Name != "lint" {
		t.Fatalf("Load(.) = %+v", pkgs)
	}
	if pkgs[0].Module != "repro" {
		t.Fatalf("module = %q, want repro", pkgs[0].Module)
	}
	if names := fixtureFuncNames(pkgs[0]); len(names) == 0 {
		t.Fatal("no functions found in loaded package")
	}
}
