package lint

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"
)

// RunFixture loads the fixture package at dir (relative to the test's working
// directory, e.g. "testdata/src/hotpath"), runs the analyzer over it, and
// compares the diagnostics against `// want "regexp"` comments: every
// expectation must be matched by a diagnostic on its line, and every
// diagnostic must be expected. Multiple expectations on one line are
// space-separated quoted regexps, analysistest-style:
//
//	s := string(b) // want `converts \[\]byte to string`
//
// Suppression comments participate exactly as in production, so a fixture
// can also assert that //aarohi:allow works.
func RunFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := Load("", []string{"./" + strings.TrimPrefix(dir, "./")})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	unmatched := map[key][]Diagnostic{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		unmatched[k] = append(unmatched[k], d)
	}

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants, perr := parseWants(c.Text)
					if perr != nil {
						t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), perr)
					}
					if len(wants) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, want := range wants {
						re, rerr := regexp.Compile(want)
						if rerr != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, want, rerr)
						}
						idx := -1
						for i, d := range unmatched[k] {
							if re.MatchString(d.Message) {
								idx = i
								break
							}
						}
						if idx < 0 {
							t.Errorf("%s:%d: expected diagnostic matching %q, got none",
								pos.Filename, pos.Line, want)
							continue
						}
						unmatched[k] = append(unmatched[k][:idx], unmatched[k][idx+1:]...)
					}
				}
			}
		}
	}

	for k, ds := range unmatched {
		for _, d := range ds {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, d.Message)
		}
	}
}

// parseWants extracts the quoted regexps from a `// want "..." "..."`
// comment (also accepting backquotes). Returns nil when the comment is not a
// want-comment.
func parseWants(comment string) ([]string, error) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
	var wants []string
	for rest != "" {
		quote := rest[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want expectation must be quoted: %q", rest)
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want expectation: %q", rest)
		}
		wants = append(wants, rest[1:1+end])
		rest = strings.TrimSpace(rest[2+end:])
	}
	return wants, nil
}

// fixtureFuncNames lists the function names declared in the loaded fixture —
// a guard for fixture-integrity tests.
func fixtureFuncNames(pkg *Package) []string {
	var names []string
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				names = append(names, fd.Name.Name)
			}
		}
	}
	return names
}
