package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MustClose flags values of project-owned io.Closer-shaped types (predictor
// Manager, serve Server, WAL journal, registry store, …) that a function
// creates and then neither closes nor lets escape. A Manager that is never
// closed leaks its worker goroutines; a WAL journal that is never closed
// leaks its batch-fsync loop and an open segment fd — both are the kind of
// drip that only shows up after days of uptime.
//
// A creation counts when a constructor-shaped call (callee named New*,
// Open*, Create*, or a lower-case variant — getters like s.manager() hand
// out a value someone else owns and are ignored) returns a named type (or
// pointer to one) that (a) is declared in the same module as the package
// under analysis and (b) has a Close method in its method set. The value is satisfied when, in
// the same function, it appears as the receiver of a Close call, is
// returned, is assigned to anything other than a simple local (struct field,
// global, map/slice element), is sent on a channel, or is passed as an
// argument to another call — the last holder is responsible, and ownership
// transfers are explicit in this codebase. The check is function-local and
// deliberately ignores aliasing; the fixture documents the contract.
var MustClose = &Analyzer{
	Name: "mustclose",
	Doc:  "flag project Closer-typed values created but neither closed nor escaping",
	Run:  runMustClose,
}

func runMustClose(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMustClose(pass, fd)
		}
	}
	return nil
}

// creation is one tracked closer-typed local.
type creation struct {
	obj  types.Object
	call *ast.CallExpr
	name string // type name for the diagnostic
}

func checkMustClose(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pass 1: find `v := NewX(...)` / `v, err := Open(...)` creations of
	// project closer types bound to simple local identifiers.
	var tracked []*creation
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Only v := f(...) shapes: a plain `=` may be re-binding a value
		// someone else owns.
		if assign.Tok.String() != ":=" {
			return true
		}
		var call *ast.CallExpr
		if len(assign.Rhs) == 1 {
			call, _ = ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		}
		if call == nil || isConversion(info, call) || !constructorCall(call) {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				continue
			}
			if name, ok := projectCloserType(pass, obj.Type()); ok {
				tracked = append(tracked, &creation{obj: obj, call: call, name: name})
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Pass 2: look for a Close, or an escape, of each tracked object.
	satisfied := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Close() / v.Shutdown(...) — any method spelled on v whose
			// name starts with Close or Shutdown counts as releasing it.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && isTracked(tracked, obj) {
						if sel.Sel.Name == "Close" || sel.Sel.Name == "Shutdown" {
							satisfied[obj] = true
							return true
						}
					}
				}
			}
			// v passed as an argument: ownership transferred.
			for _, arg := range n.Args {
				markUse(info, tracked, satisfied, arg)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				markUse(info, tracked, satisfied, res)
			}
		case *ast.SendStmt:
			markUse(info, tracked, satisfied, n.Value)
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				markUse(info, tracked, satisfied, elt)
			}
		case *ast.AssignStmt:
			// v assigned onward (s.f = v, m[k] = v, outer = v): the new
			// holder owns it. Only `x := v` aliasing to a fresh local keeps
			// the obligation here — and then the alias is not tracked, so we
			// conservatively treat any RHS use as an escape too. A blank
			// `_ = v` stores nothing and keeps the obligation.
			for i, rhs := range n.Rhs {
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				markUse(info, tracked, satisfied, rhs)
			}
		}
		return true
	})

	for _, c := range tracked {
		if !satisfied[c.obj] {
			pass.Reportf(c.call.Pos(), "%s created here is never closed and never escapes (call %s.Close, or hand it off)",
				c.name, c.obj.Name())
		}
	}
}

// constructorCall reports whether the callee's name looks like it mints a
// fresh value the caller now owns. Accessors returning an existing value
// (s.manager(), r.Store()) must not create a close obligation.
func constructorCall(call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	for _, prefix := range []string{"New", "new", "Open", "open", "Create", "create"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func isTracked(tracked []*creation, obj types.Object) bool {
	for _, c := range tracked {
		if c.obj == obj {
			return true
		}
	}
	return false
}

// markUse marks a tracked object satisfied when expr is (or contains at its
// root) a bare reference to it.
func markUse(info *types.Info, tracked []*creation, satisfied map[types.Object]bool, expr ast.Expr) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil && isTracked(tracked, obj) {
			satisfied[obj] = true
		}
	case *ast.UnaryExpr:
		markUse(info, tracked, satisfied, e.X)
	}
}

// projectCloserType reports whether t is (a pointer to) a named type declared
// in the analyzed package's module with a Close method, returning a display
// name.
func projectCloserType(pass *Pass, t types.Type) (string, bool) {
	named := namedOrPointee(t)
	if named == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	if pass.Module == "" || !inModule(named.Obj().Pkg().Path(), pass.Module) {
		return "", false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if f, ok := ms.At(i).Obj().(*types.Func); ok && f.Name() == "Close" {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name(), true
		}
	}
	return "", false
}

// inModule reports whether pkgPath lives inside module mod.
func inModule(pkgPath, mod string) bool {
	return pkgPath == mod || (len(pkgPath) > len(mod) && pkgPath[:len(mod)] == mod && pkgPath[len(mod)] == '/')
}
