package lint

import (
	"strconv"
	"strings"
)

// Layering enforces the serve daemon's one-way layer DAG at the import graph:
//
//	transport ──▶ (Ingestor interface only)
//	pipeline  ──▶ (Sink interface only)
//	shard     ──▶ ring + domain packages
//	lifecycle ──▶ shard
//	serve     ──▶ everything (composition root)
//	ring      ──▶ nothing above internal/core
//	gossip    ──▶ ring + domain packages, never a serve layer
//	ship      ──▶ same: the WAL-shipping peer of gossip
//
// The decomposition of internal/serve only holds its value while the arrows
// stay one-way: the moment transport reaches into pipeline internals or a
// shard calls back up into a listener, the layers collapse back into the
// monolith they replaced. The compiler rejects cycles but not skipped layers,
// so this analyzer checks every module-internal import against the DAG.
//
// Packages are classified by the last segment of their import path, so the
// rules apply to any module package named after a layer (including test
// fixtures); packages outside the module — the standard library's
// container/ring, for instance — are never classified.
var Layering = &Analyzer{
	Name: "layering",
	Doc: "enforce the serve layer DAG: transport and pipeline know only their " +
		"downward interfaces, shards never import the layers that drive them, " +
		"and the hash ring imports nothing above internal/core",
	Run: runLayering,
}

// layerNames is the set of path segments that place a module package in the
// DAG. Packages whose last segment is anything else are unconstrained.
var layerNames = map[string]bool{
	"transport": true,
	"pipeline":  true,
	"shard":     true,
	"lifecycle": true,
	"serve":     true,
	"ring":      true,
	"core":      true,
	"gossip":    true,
	"ship":      true,
}

// layerRules lists, per importing layer, the layers it must never import and
// the invariant the ban preserves. serve and core are absent: serve is the
// composition root and may import everything; core sits at the bottom and has
// nothing below it to reach.
var layerRules = map[string]struct {
	deny   map[string]bool
	reason string
}{
	"transport": {
		deny:   map[string]bool{"pipeline": true, "shard": true, "lifecycle": true, "serve": true, "ring": true},
		reason: "transport knows the daemon only through the Ingestor interface",
	},
	"pipeline": {
		deny:   map[string]bool{"transport": true, "shard": true, "lifecycle": true, "serve": true, "ring": true},
		reason: "the pipeline drives its Sink interface and nothing above it",
	},
	"shard": {
		deny:   map[string]bool{"transport": true, "pipeline": true, "lifecycle": true, "serve": true},
		reason: "shards are driven by the layers above and never call back up",
	},
	"lifecycle": {
		deny:   map[string]bool{"transport": true, "pipeline": true, "serve": true},
		reason: "lifecycle coordinates shards and must not reach the ingest path",
	},
	// The cluster plane sits beside the daemon, not above it: the serve layer
	// composes gossip and ship, so neither may reach back into any serve
	// layer (membership must stay usable without a daemon around it).
	"gossip": {
		deny:   map[string]bool{"transport": true, "pipeline": true, "shard": true, "lifecycle": true, "serve": true},
		reason: "gossip is membership only — the serve layers compose it, never the reverse",
	},
	"ship": {
		deny:   map[string]bool{"transport": true, "pipeline": true, "shard": true, "lifecycle": true, "serve": true},
		reason: "WAL shipping moves journal bytes between peers and must not know the daemon that owns them",
	},
}

// layerOf classifies a package path: its last segment when the package is
// inside the module and the segment names a layer, "" otherwise.
func layerOf(module, path string) string {
	if module == "" || !strings.HasPrefix(path, module+"/") {
		return ""
	}
	seg := path[strings.LastIndexByte(path, '/')+1:]
	if !layerNames[seg] {
		return ""
	}
	return seg
}

func runLayering(p *Pass) error {
	self := layerOf(p.Module, p.Pkg.Path())
	if self == "" {
		return nil
	}
	rule, restricted := layerRules[self]
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if self == "ring" {
				// The ring hashes member names; it depends on nothing in the
				// module above internal/core, classified or not.
				if strings.HasPrefix(path, p.Module+"/") && layerOf(p.Module, path) != "core" {
					p.Reportf(imp.Pos(), "ring must not import %s: the hash ring sits below every layer and imports nothing above internal/core", path)
				}
				continue
			}
			if !restricted {
				continue
			}
			target := layerOf(p.Module, path)
			if target != "" && rule.deny[target] {
				p.Reportf(imp.Pos(), "%s must not import %s package %s: %s", self, target, path, rule.reason)
			}
		}
	}
	return nil
}
