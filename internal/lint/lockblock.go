package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockBlock flags operations that can block — or that perform I/O — while a
// sync.Mutex or sync.RWMutex is held in the same function: channel sends and
// receives, select statements without a default case, time.Sleep, file and
// network I/O, and fsync. A predictor that holds its ingest lock across an
// fsync turns the paper's "real-time" into "as fast as the disk flushes";
// internal/serve, internal/predictor and internal/wal all hold locks within
// arm's reach of I/O, which is exactly where this rots.
//
// The analysis is structural, not path-sensitive: a span starts at
// mu.Lock()/mu.RLock() and ends at the first Unlock of the same mutex
// expression *at the same block level*. An Unlock inside a conditional branch
// that terminates (return/break/continue) does not end the outer span — the
// usual early-error-exit shape keeps the lock held on the fallthrough path. A
// deferred Unlock extends the span to the end of the block. Deliberate
// exceptions (e.g. the WAL's fsync-on-segment-roll, which must serialize with
// appends) carry an //aarohi:allow lockblock comment with the reason.
var LockBlock = &Analyzer{
	Name: "lockblock",
	Doc:  "flag blocking operations (chan ops, I/O, fsync, sleeps) while a mutex is held",
	Run:  runLockBlock,
}

func runLockBlock(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanBlockForLocks(pass, fd.Body.List, nil)
		}
	}
	return nil
}

// lockSpan is one mutex known to be held at the current point.
type lockSpan struct {
	key string // canonical spelling of the mutex expression
	pos ast.Node
}

// scanBlockForLocks walks one statement list carrying the set of held locks,
// descending into nested blocks. It returns the held set as of the end of the
// list (locks acquired here stay held for a caller's tail when the block
// falls through — callers that know the block terminates discard it).
func scanBlockForLocks(pass *Pass, stmts []ast.Stmt, held []lockSpan) []lockSpan {
	held = append([]lockSpan(nil), held...)
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, kind, ok := lockCall(pass, s.X); ok {
				switch kind {
				case "Lock", "RLock":
					held = append(held, lockSpan{key: key, pos: s})
					continue
				case "Unlock", "RUnlock":
					held = removeLock(held, key)
					continue
				}
			}
			checkStmtUnderLocks(pass, s, held)
		case *ast.DeferStmt:
			if key, kind, ok := lockCall(pass, s.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
				// Deferred unlock: the lock stays held to the end of the
				// function; the span simply continues.
				_ = key
				continue
			}
			// A deferred closure runs after the function's own unlocks; its
			// body is scanned with no held set.
			if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
				scanBlockForLocks(pass, fl.Body.List, nil)
			}
		case *ast.BlockStmt:
			inner := scanBlockForLocks(pass, s.List, held)
			held = carryOver(held, inner, s)
		case *ast.IfStmt:
			if s.Init != nil {
				checkStmtUnderLocks(pass, s.Init, held)
			}
			checkExprUnderLocks(pass, s.Cond, held)
			inner := scanBlockForLocks(pass, s.Body.List, held)
			if !terminates(s.Body) {
				held = carryOver(held, inner, s.Body)
			}
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					innerE := scanBlockForLocks(pass, e.List, held)
					if !terminates(e) {
						held = carryOver(held, innerE, e)
					}
				case *ast.IfStmt:
					scanBlockForLocks(pass, []ast.Stmt{e}, held)
				}
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			// Headers (init/cond/post/tag/range operand) run under the
			// current held set; bodies are scanned structurally so inner
			// Lock/Unlock pairs are honored. Lock-state changes inside a
			// loop body do not propagate out (a loop that locks and unlocks
			// per iteration is balanced).
			for _, e := range headerExprs(s) {
				checkExprUnderLocks(pass, e, held)
			}
			for _, body := range nestedBlocks(s) {
				scanBlockForLocks(pass, body.List, held)
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !selectHasDefault(s) {
				reportBlocked(pass, s, held, "select with no default case blocks")
			}
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					scanBlockForLocks(pass, cc.Body, held)
				}
			}
		default:
			checkStmtUnderLocks(pass, stmt, held)
		}
	}
	return held
}

// carryOver keeps locks acquired inside a nested block visible to the
// caller's remainder, and honors unlocks the nested block performed.
func carryOver(outer, inner []lockSpan, _ ast.Node) []lockSpan {
	return inner
}

// headerExprs returns the header expressions and statements of a loop or
// switch — the parts that execute under the surrounding lock state.
func headerExprs(stmt ast.Stmt) []ast.Expr {
	var out []ast.Expr
	add := func(e ast.Expr) {
		if e != nil {
			out = append(out, e)
		}
	}
	switch s := stmt.(type) {
	case *ast.ForStmt:
		add(s.Cond)
	case *ast.RangeStmt:
		add(s.X)
	case *ast.SwitchStmt:
		add(s.Tag)
	}
	return out
}

// nestedBlocks extracts the statement bodies of loop/switch statements.
func nestedBlocks(stmt ast.Stmt) []*ast.BlockStmt {
	switch s := stmt.(type) {
	case *ast.ForStmt:
		return []*ast.BlockStmt{s.Body}
	case *ast.RangeStmt:
		return []*ast.BlockStmt{s.Body}
	case *ast.SwitchStmt:
		var out []*ast.BlockStmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, &ast.BlockStmt{List: cc.Body})
			}
		}
		return out
	case *ast.TypeSwitchStmt:
		var out []*ast.BlockStmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, &ast.BlockStmt{List: cc.Body})
			}
		}
		return out
	}
	return nil
}

// terminates reports whether a block always transfers control out (return,
// panic, continue, break, goto) on its final statement.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func removeLock(held []lockSpan, key string) []lockSpan {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].key == key {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// lockCall recognizes x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() calls on a
// sync.Mutex or sync.RWMutex (directly or embedded) and returns a canonical
// key for the mutex expression.
func lockCall(pass *Pass, expr ast.Expr) (key, kind string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || funcPkgPath(f) != "sync" {
		return "", "", false
	}
	recv := recvNamed(f)
	if recv == nil {
		return "", "", false
	}
	switch recv.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", "", false
	}
	// Canonical key: the receiver expression with R-flavor folded away, so
	// mu.RLock pairs with mu.RUnlock and Lock with Unlock on the same mu.
	return exprKey(sel.X), name, true
}

// exprKey renders an expression as a canonical string for mutex identity.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[" + exprKey(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprKey(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	}
	return "?"
}

// checkStmtUnderLocks inspects one statement (and everything nested in it
// that the caller did not already handle structurally) for blocking
// operations while locks are held.
func checkStmtUnderLocks(pass *Pass, stmt ast.Stmt, held []lockSpan) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later / elsewhere
		case *ast.SendStmt:
			reportBlocked(pass, n, held, "channel send blocks")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportBlocked(pass, n, held, "channel receive blocks")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				reportBlocked(pass, n, held, "select with no default case blocks")
			}
			return false
		case *ast.CallExpr:
			if msg := blockingCall(pass, n); msg != "" {
				reportBlocked(pass, n, held, msg)
			}
		}
		return true
	})
}

func checkExprUnderLocks(pass *Pass, expr ast.Expr, held []lockSpan) {
	if expr == nil || len(held) == 0 {
		return
	}
	checkStmtUnderLocks(pass, &ast.ExprStmt{X: expr}, held)
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// ioPackages are packages whose exported functions count as I/O.
var ioPackages = map[string]bool{
	"os":       true,
	"net":      true,
	"io":       true,
	"bufio":    true,
	"net/http": true,
}

// ioMethodTypes are receiver types whose I/O-shaped methods count.
var ioMethodTypes = map[string]map[string]bool{
	"os.File": {
		"Sync": true, "Write": true, "WriteString": true, "WriteAt": true,
		"Read": true, "ReadAt": true, "ReadFrom": true, "Truncate": true,
	},
}

// ioInterfaceMethods flag method calls through net.Conn-shaped interfaces.
var netConnMethods = map[string]bool{
	"Read": true, "Write": true, "Accept": true,
}

// blockingCall classifies a call as blocking I/O, fsync or sleep; returns a
// description or "".
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil {
		return ""
	}
	pkg := funcPkgPath(f)
	if pkg == "time" && f.Name() == "Sleep" {
		return "time.Sleep blocks"
	}
	if recv := recvNamed(f); recv != nil {
		if recv.Obj().Pkg() != nil {
			full := recv.Obj().Pkg().Path() + "." + recv.Obj().Name()
			if methods, ok := ioMethodTypes[full]; ok && methods[f.Name()] {
				if f.Name() == "Sync" {
					return "fsync under a held lock stalls every other holder"
				}
				return "file I/O (" + full + "." + f.Name() + ") blocks"
			}
			if full == "net.netFD" || strings.HasPrefix(full, "net.") {
				if netConnMethods[f.Name()] {
					return "network I/O (" + full + "." + f.Name() + ") blocks"
				}
			}
		}
		return ""
	}
	// Package-level functions: opening/creating/reading files, dialing.
	if ioPackages[pkg] {
		switch f.Name() {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile", "ReadDir",
			"Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll",
			"Dial", "DialTimeout", "Listen", "ReadFull", "ReadAll", "Copy",
			"Get", "Post", "Do":
			return pkg + "." + f.Name() + " performs I/O"
		}
	}
	return ""
}

func reportBlocked(pass *Pass, n ast.Node, held []lockSpan, what string) {
	keys := make([]string, len(held))
	for i, h := range held {
		keys[i] = h.key
	}
	pass.Reportf(n.Pos(), "%s while %s is held", what, strings.Join(keys, ", "))
}
