package lint

import (
	"go/ast"
	"go/types"
)

// Durable flags discarded error results on the durability path: a call to a
// WAL-package method or function that returns an error, used as a bare
// statement (or inside go/defer), silently drops the one signal that the
// journal — the daemon's crash-safety contract — has stopped being durable.
// An fsync error in particular is one-shot: the kernel clears the dirty
// state, so the caller who ignores it has lost data *and* the evidence.
//
// Covered calls: methods on types declared in a package named "wal"
// (Append, Sync, Close, TruncateBefore, …), package-level functions of a
// "wal" package returning an error, and (*os.File).Sync anywhere. An
// explicit `_ = call()` is accepted as a deliberate, visible discard —
// the batch-fsync loop uses it, with a comment, because Append surfaces
// hard write errors on the next record.
var Durable = &Analyzer{
	Name: "durable",
	Doc:  "flag discarded errors from WAL append/fsync/close and os.File.Sync",
	Run:  runDurable,
}

func runDurable(pass *Pass) error {
	check := func(call *ast.CallExpr) {
		if name, ok := durableCall(pass, call); ok {
			pass.Reportf(call.Pos(), "error from %s is discarded on the durability path (handle it, or assign to _ with a comment)", name)
		}
	}
	pass.Preorder(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				check(call)
			}
			return false // don't re-visit the call as a generic child
		case *ast.GoStmt:
			check(n.Call)
			return false
		case *ast.DeferStmt:
			check(n.Call)
			return false
		}
		return true
	})
	return nil
}

// durableCall reports whether the call targets the durability surface and
// returns an error that the bare-statement position necessarily discards.
func durableCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	// (*os.File).Sync — fsync is fsync wherever it appears.
	if recv := recvNamed(f); recv != nil {
		pkg := recv.Obj().Pkg()
		if pkg == nil {
			return "", false
		}
		if pkg.Path() == "os" && recv.Obj().Name() == "File" && f.Name() == "Sync" {
			return "(*os.File).Sync", true
		}
		if pkg.Name() == "wal" {
			return pkg.Name() + "." + recv.Obj().Name() + "." + f.Name(), true
		}
		return "", false
	}
	if f.Pkg() != nil && f.Pkg().Name() == "wal" {
		return "wal." + f.Name(), true
	}
	return "", false
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
