package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective marks a function whose body must not allocate. The
// annotation goes in the function's doc comment:
//
//	//aarohi:hotpath
//	func (s *Scanner) ScanBytes(msg []byte) (core.PhraseID, bool) { ... }
const hotpathDirective = "//aarohi:hotpath"

// Hotpath flags allocation-causing constructs inside functions annotated
// //aarohi:hotpath: the scanner DFA step, the parser driver feed, the serve
// ingest pump and the WAL record encode are per-line/per-token code where a
// single allocation multiplies by the log rate (ROADMAP item 2 targets
// >100 MB/s, where "the scanner DFA is the only cost").
//
// The checks are syntactic proxies for the allocations the compiler would
// emit, deliberately conservative — no escape analysis:
//
//   - string([]byte) / []byte(string) / []rune conversions (full copies),
//     except a string(b) used directly as a map index, which the compiler
//     performs without copying;
//   - calls into fmt, and errors.New (move formatting to a cold helper);
//   - map and slice composite literals, make, and new;
//   - function literals (closures generally escape to the heap);
//   - implicit interface conversions at call arguments, returns and channel
//     sends, including the ...any slice of a variadic call (boxing).
//
// testing.AllocsPerRun regression tests pin the same functions at runtime;
// the analyzer is the reviewer that explains *which* construct regressed.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag allocating constructs in functions annotated //aarohi:hotpath",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, hotpathDirective) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// hasDirective reports whether the comment group contains the directive as a
// whole comment line (directives are //-comments with no space after the
// slashes, so they never render in godoc).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var sig *types.Signature
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		sig, _ = obj.Type().(*types.Signature)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path builds a closure (function literals escape to the heap)")
			return false // the literal's body runs elsewhere; don't double-report

		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "hot path allocates a map literal")
				case *types.Slice:
					pass.Reportf(n.Pos(), "hot path allocates a slice literal")
				}
			}

		case *ast.CallExpr:
			checkHotCall(pass, n)

		case *ast.ReturnStmt:
			if sig != nil {
				checkHotReturn(pass, sig, n)
			}

		case *ast.SendStmt:
			if ch, ok := info.Types[n.Chan]; ok {
				if chT, ok := ch.Type.Underlying().(*types.Chan); ok {
					reportBoxing(pass, chT.Elem(), n.Value, "channel send")
				}
			}
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo

	if isConversion(info, call) {
		to := info.Types[call.Fun].Type
		from := info.Types[call.Args[0]].Type
		if copyingConversion(to, from) && !isMapIndexContext(pass, call) {
			pass.Reportf(call.Pos(), "hot path converts %s to %s (copies the contents)",
				types.TypeString(from, types.RelativeTo(pass.Pkg)),
				types.TypeString(to, types.RelativeTo(pass.Pkg)))
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := info.Uses[id].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				pass.Reportf(call.Pos(), "hot path calls make (allocates)")
			case "new":
				pass.Reportf(call.Pos(), "hot path calls new (allocates)")
			}
			return
		}
	}

	if f := calleeFunc(info, call); f != nil {
		switch pkg := funcPkgPath(f); {
		case pkg == "fmt":
			pass.Reportf(call.Pos(), "hot path calls fmt.%s (allocates; format in a cold helper)", f.Name())
		case pkg == "errors" && f.Name() == "New":
			pass.Reportf(call.Pos(), "hot path calls errors.New (allocates; hoist to a package-level sentinel)")
		}
	}

	// Interface boxing at the call boundary.
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	if call.Ellipsis != token.NoPos {
		// a(slice...) passes the slice through unchanged.
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			// Each boxed variadic element also implies the ...T backing
			// slice; the per-element report is signal enough.
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else {
			pt = params.At(i).Type()
		}
		reportBoxing(pass, pt, arg, "argument")
	}
}

func checkHotReturn(pass *Pass, sig *types.Signature, ret *ast.ReturnStmt) {
	results := sig.Results()
	if results.Len() != len(ret.Results) {
		return // naked return or single multi-value call
	}
	for i, expr := range ret.Results {
		reportBoxing(pass, results.At(i).Type(), expr, "return")
	}
}

// reportBoxing flags a concrete value converted to an interface at a
// boundary. Pointer-shaped values still allocate an itab pair unless the
// compiler can prove otherwise, so everything concrete is flagged; untyped
// nil and values already of interface type are free.
func reportBoxing(pass *Pass, to types.Type, expr ast.Expr, context string) {
	if !isInterface(to) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() || isInterface(tv.Type) {
		return
	}
	if tv.Value != nil {
		return // constants box into read-only statics, not per-call heap
	}
	pass.Reportf(expr.Pos(), "hot path boxes %s into %s at %s (allocates)",
		types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)),
		types.TypeString(to, types.RelativeTo(pass.Pkg)), context)
}

// copyingConversion reports whether a conversion from -> to copies memory:
// string <-> []byte/[]rune in either direction.
func copyingConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isMapIndexContext reports whether the conversion is the index operand of a
// map access (m[string(b)]), which the compiler performs without allocating.
func isMapIndexContext(pass *Pass, conv *ast.CallExpr) bool {
	for _, file := range pass.Files {
		if file.Pos() <= conv.Pos() && conv.End() <= file.End() {
			found := false
			ast.Inspect(file, func(n ast.Node) bool {
				if found {
					return false
				}
				idx, ok := n.(*ast.IndexExpr)
				if !ok {
					return true
				}
				if ast.Unparen(idx.Index) == conv {
					if tv, ok := pass.TypesInfo.Types[idx.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							found = true
							return false
						}
					}
				}
				return true
			})
			return found
		}
	}
	return false
}
