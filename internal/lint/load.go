package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path   string
	Name   string
	Dir    string
	Module string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves the patterns with the go tool, parses the matched packages,
// and type-checks them against compiler export data. Running `go list
// -export` builds (or reuses from the build cache) export files for every
// dependency, so the type-checker never re-checks dependencies from source —
// the x/tools go/packages NeedTypes shape, on the standard library only.
//
// dir is the working directory for the go tool ("" for the current one);
// only non-test files are loaded, matching what ships in the binary.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Module,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	var targets []*listedPackage
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue // empty package (e.g. a directory of only test files)
		}
		p := lp
		targets = append(targets, &p)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
	}
	mod := ""
	if lp.Module != nil {
		mod = lp.Module.Path
	}
	return &Package{
		Path:   lp.ImportPath,
		Name:   lp.Name,
		Dir:    lp.Dir,
		Module: mod,
		Fset:   fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}, nil
}

// moduleRelative trims the module's directory prefix off a file path, for
// stable diagnostic rendering in tests.
func moduleRelative(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
