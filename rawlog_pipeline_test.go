package aarohi_test

import (
	"testing"
	"time"

	aarohi "repro"
	"repro/internal/drain"
	"repro/internal/lexgen"
	"repro/internal/loggen"
)

// TestFullyUnsupervisedPipeline runs the complete raw-log workflow with no
// given inventory: Drain-style template mining → keyword classification →
// Phase-1 chain mining → predictor generation → online prediction on a
// disjoint test log. This is the "fully unsupervised parser" the paper's
// contribution statement claims ("Aarohi automatically generates a fully
// unsupervised parser from a DL-based training").
func TestFullyUnsupervisedPipeline(t *testing.T) {
	train, err := loggen.Generate(loggen.Config{
		Dialect: loggen.DialectXC30, Seed: 42, Duration: 6 * time.Hour,
		Nodes: 12, Failures: 12,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 1. Mine templates from raw message text.
	miner := drain.New(drain.Config{})
	for _, e := range train.Events {
		miner.Learn(e.Message)
	}
	inventory := miner.Templates()
	if len(inventory) < 20 {
		t.Fatalf("mined only %d templates", len(inventory))
	}
	failedMined := 0
	for _, tpl := range inventory {
		if tpl.Class == aarohi.Failed {
			failedMined++
		}
	}
	if failedMined == 0 {
		t.Fatal("no Failed-class template mined; classification broken")
	}

	// 2. Tokenize the training log through a scanner generated from the
	// mined inventory, then mine failure chains.
	scanner, err := aarohi.NewScanner(inventory)
	if err != nil {
		t.Fatal(err)
	}
	var tokens []aarohi.Token
	for _, e := range train.Events {
		line := lexgen.FormatLine(e.Time, e.Node, e.Message)
		tok, ok, err := scanner.ScanLine(line)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			tokens = append(tokens, tok)
		}
	}
	res, err := aarohi.Train(tokens, inventory, aarohi.TrainConfig{MinSupport: 2, MinChainLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chains) == 0 {
		t.Fatal("no chains mined from mined templates")
	}

	// 3. Generate the predictor and run it on a disjoint test log.
	p, err := aarohi.New(res.Chains, inventory, aarohi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	test, err := loggen.Generate(loggen.Config{
		Dialect: loggen.DialectXC30, Seed: 4242, Duration: 4 * time.Hour,
		Nodes: 12, Failures: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	predicted := map[string]bool{}
	observed := 0
	for _, line := range test.Lines() {
		out, err := p.ProcessLine(line)
		if err != nil {
			t.Fatal(err)
		}
		if out.Prediction != nil {
			predicted[out.Prediction.Node] = true
		}
		if out.Failure != nil {
			observed++
		}
	}
	if observed == 0 {
		t.Fatal("mined Failed templates never observed on the test log")
	}
	hits := 0
	for _, inj := range test.Failures {
		if predicted[inj.Node] {
			hits++
		}
	}
	// Mined templates differ slightly from ground truth (extra wildcards,
	// merged groups), so demand a majority, not perfection.
	if hits < len(test.Failures)/2 {
		t.Errorf("unsupervised pipeline predicted %d/%d failed nodes", hits, len(test.Failures))
	}
	t.Logf("unsupervised pipeline: %d templates, %d chains, %d/%d failures predicted",
		len(inventory), len(res.Chains), hits, len(test.Failures))
}
