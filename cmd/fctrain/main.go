// Command fctrain runs Phase 1: it mines failure chains from a historical
// log and writes them as JSON for the online predictor.
//
// With a known template inventory:
//
//	fctrain -in train.log -templates templates.json -out chains.json
//
// Starting from raw logs (no inventory), templates are mined first with the
// Drain-style miner and classified by keyword heuristics:
//
//	fctrain -in train.log -mine-templates -templates-out mined.json -out chains.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	aarohi "repro"
	"repro/internal/drain"
	"repro/internal/lexgen"
	"repro/internal/vet"
)

func main() {
	var (
		inPath     = flag.String("in", "-", "training log path (- for stdin)")
		tplPath    = flag.String("templates", "", "template inventory JSON (omit with -mine-templates)")
		mine       = flag.Bool("mine-templates", false, "mine the template inventory from the raw log (Drain-style)")
		tplOut     = flag.String("templates-out", "", "write the (mined or given) inventory JSON here")
		outPath    = flag.String("out", "-", "output chains JSON path (- for stdout)")
		minSupport = flag.Int("min-support", 2, "minimum windows per chain")
		minLen     = flag.Int("min-len", 2, "minimum chain length (phrases incl. terminal)")
		maxGap     = flag.Duration("max-gap", 4*time.Minute, "ΔT cut between precursors")
		lookback   = flag.Duration("lookback", 30*time.Minute, "precursor window bound")
		useLSTM    = flag.Bool("lstm", false, "enable LSTM candidate validation")
		verbose    = flag.Bool("v", false, "print mining diagnostics to stderr")
	)
	flag.Parse()
	if *tplPath == "" && !*mine {
		fatalf("either -templates or -mine-templates is required")
	}

	lines := readLines(*inPath)

	var inventory []aarohi.Template
	if *mine {
		miner := drain.New(drain.Config{})
		for i, line := range lines {
			_, _, msg, err := lexgen.ParseLine(line)
			if err != nil {
				fatalf("line %d: %v", i+1, err)
			}
			miner.Learn(msg)
		}
		inventory = miner.Templates()
		if *verbose {
			fmt.Fprintf(os.Stderr, "fctrain: mined %d templates from %d lines\n", len(inventory), len(lines))
		}
	} else {
		tf, err := os.Open(*tplPath)
		if err != nil {
			fatalf("%v", err)
		}
		inventory, err = aarohi.ReadTemplates(tf)
		tf.Close()
		if err != nil {
			fatalf("%v", err)
		}
	}
	if *tplOut != "" {
		f, err := os.Create(*tplOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := aarohi.WriteTemplates(f, inventory); err != nil {
			fatalf("writing templates: %v", err)
		}
		f.Close()
	}

	scanner, err := aarohi.NewScanner(inventory)
	if err != nil {
		fatalf("%v", err)
	}
	var tokens []aarohi.Token
	for i, line := range lines {
		tok, ok, err := scanner.ScanLine(line)
		if err != nil {
			fatalf("line %d: %v", i+1, err)
		}
		if ok {
			tokens = append(tokens, tok)
		}
	}

	res, err := aarohi.Train(tokens, inventory, aarohi.TrainConfig{
		MinSupport: *minSupport, MinChainLen: *minLen,
		MaxGap: *maxGap, Lookback: *lookback, UseLSTM: *useLSTM,
	})
	if err != nil {
		fatalf("training: %v", err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "fctrain: %d lines, %d tokens, %d windows, %d candidates, %d chains\n",
			len(lines), len(tokens), res.Windows, len(res.Candidates), len(res.Chains))
		for _, c := range res.Candidates {
			fmt.Fprintf(os.Stderr, "  candidate len=%d support=%d score=%.2f\n",
				len(c.Phrases), c.Support, c.Score)
		}
	}

	// Vet the mined model before writing it: defects here are warnings, not
	// fatal — the chains are still written so they can be inspected — but
	// deploying a model with error findings will misbehave online.
	if len(res.Chains) > 0 {
		rep, err := vet.Run(vet.Model{Chains: res.Chains, Templates: inventory}, vet.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fctrain: vet: %v\n", err)
		} else if len(rep.Findings) > 0 {
			fmt.Fprintf(os.Stderr, "fctrain: vet found issues in the mined model:\n")
			rep.WriteText(os.Stderr)
		}
	}

	var out io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		out = f
	}
	if err := aarohi.WriteChains(out, res.Chains); err != nil {
		fatalf("writing chains: %v", err)
	}
	fmt.Fprintf(os.Stderr, "fctrain: mined %d failure chains from %d windows\n", len(res.Chains), res.Windows)
}

func readLines(path string) []string {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}
	var lines []string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fatalf("reading log: %v", err)
	}
	return lines
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fctrain: "+format+"\n", args...)
	os.Exit(1)
}
