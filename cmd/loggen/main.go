// Command loggen generates synthetic Cray-style cluster logs with injected
// node failures — the reproduction's data substrate.
//
// Usage:
//
//	loggen -dialect xc30 -nodes 16 -duration 4h -failures 6 -seed 42 \
//	       -out run.log -truth truth.json -chains chains.json -templates templates.json
//
// The raw log goes to -out (stdout by default); -truth records the injected
// ground truth; -chains and -templates export the dialect's failure chains
// and template inventory for use with fctrain/aarohi.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/loggen"
)

func dialects() map[string]*loggen.Dialect {
	return map[string]*loggen.Dialect{
		"xc30":      loggen.DialectXC30,
		"xe6":       loggen.DialectXE6,
		"xc40":      loggen.DialectXC40,
		"xc4030":    loggen.DialectXC4030,
		"xk":        loggen.DialectXK,
		"bgp":       loggen.DialectBGP,
		"cassandra": loggen.DialectCassandra,
		"hadoop":    loggen.DialectHadoop,
	}
}

func main() {
	var (
		dialectName = flag.String("dialect", "xc30", "system dialect: "+strings.Join(dialectNames(), ", "))
		nodes       = flag.Int("nodes", 8, "cluster size")
		duration    = flag.Duration("duration", 2*time.Hour, "log time span")
		failures    = flag.Int("failures", 2, "node failures to inject")
		seed        = flag.Int64("seed", 1, "random seed")
		benignRate  = flag.Float64("benign-rate", 2, "benign messages per node per minute")
		anomalyRate = flag.Float64("anomaly-rate", 0.05, "fraction of background drawn from anomaly templates")
		dropProb    = flag.Float64("drop", 0, "probability of dropping an injected chain phrase")
		outPath     = flag.String("out", "-", "raw log output path (- for stdout)")
		truthPath   = flag.String("truth", "", "write injected ground truth JSON here")
		chainsPath  = flag.String("chains", "", "write the dialect's failure chains JSON here")
		tplPath     = flag.String("templates", "", "write the dialect's template inventory JSON here")
	)
	flag.Parse()

	d, ok := dialects()[*dialectName]
	if !ok {
		fatalf("unknown dialect %q (have: %s)", *dialectName, strings.Join(dialectNames(), ", "))
	}
	log, err := loggen.Generate(loggen.Config{
		Dialect: d, Seed: *seed, Duration: *duration, Nodes: *nodes,
		Failures: *failures, BenignPerMinute: *benignRate,
		AnomalyRate: *anomalyRate, DropProb: *dropProb,
	})
	if err != nil {
		fatalf("%v", err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		out = f
	}
	if _, err := log.WriteTo(out); err != nil {
		fatalf("writing log: %v", err)
	}

	if *truthPath != "" {
		writeJSON(*truthPath, log.Failures)
	}
	if *chainsPath != "" {
		f, err := os.Create(*chainsPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := core.WriteChains(f, d.Chains()); err != nil {
			fatalf("writing chains: %v", err)
		}
		f.Close()
	}
	if *tplPath != "" {
		f, err := os.Create(*tplPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := core.WriteTemplates(f, d.Inventory()); err != nil {
			fatalf("writing templates: %v", err)
		}
		f.Close()
	}
	fmt.Fprintf(os.Stderr, "loggen: %d events, %d injected failures on %s\n",
		len(log.Events), len(log.Failures), d.Name)
}

func dialectNames() []string {
	var names []string
	for k := range dialects() {
		names = append(names, k)
	}
	return names
}

func writeJSON(path string, v any) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("encoding %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loggen: "+format+"\n", args...)
	os.Exit(1)
}
