// Command loggen generates synthetic Cray-style cluster logs with injected
// node failures — the reproduction's data substrate.
//
// Usage:
//
//	loggen -dialect xc30 -nodes 16 -duration 4h -failures 6 -seed 42 \
//	       -out run.log -truth truth.json -chains chains.json -templates templates.json
//
// The raw log goes to -out (stdout by default); -truth records the injected
// ground truth; -chains and -templates export the dialect's failure chains
// and template inventory for use with fctrain/aarohi.
//
// With -stream addr the log is instead sent over TCP to a running aarohid
// daemon as newline-framed lines, paced at -rate lines/sec (0 = as fast as
// the connection allows) — end-to-end load testing without intermediate
// files:
//
//	loggen -dialect xc30 -nodes 32 -failures 4 -stream 127.0.0.1:7743 -rate 5000
//
// A comma-separated -stream list sprays lines across several daemons
// round-robin — the multi-ingest shape of an aarohid cluster, where placement
// forwards each line to its owning peer no matter where it entered:
//
//	loggen -nodes 32 -failures 4 -stream host1:7743,host2:7743,host3:7743
//
// With -heartbeat <interval> the generator instead emits a per-node liveness
// cadence — jittered benign beats with optional random drops and injected
// flap episodes — the workload that exercises aarohid's phi-accrual arbiter:
//
//	loggen -heartbeat 10s -nodes 16 -duration 1h -hb-flaps 4 -drop 0.05 \
//	       -stream 127.0.0.1:7743 -rate 200
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/loggen"
	"repro/internal/serve"
)

func dialects() map[string]*loggen.Dialect {
	return map[string]*loggen.Dialect{
		"xc30":      loggen.DialectXC30,
		"xe6":       loggen.DialectXE6,
		"xc40":      loggen.DialectXC40,
		"xc4030":    loggen.DialectXC4030,
		"xk":        loggen.DialectXK,
		"bgp":       loggen.DialectBGP,
		"cassandra": loggen.DialectCassandra,
		"hadoop":    loggen.DialectHadoop,
	}
}

func main() {
	var (
		dialectName = flag.String("dialect", "xc30", "system dialect: "+strings.Join(dialectNames(), ", "))
		nodes       = flag.Int("nodes", 8, "cluster size")
		duration    = flag.Duration("duration", 2*time.Hour, "log time span")
		failures    = flag.Int("failures", 2, "node failures to inject")
		seed        = flag.Int64("seed", 1, "random seed")
		benignRate  = flag.Float64("benign-rate", 2, "benign messages per node per minute")
		anomalyRate = flag.Float64("anomaly-rate", 0.05, "fraction of background drawn from anomaly templates")
		dropProb    = flag.Float64("drop", 0, "probability of dropping an injected chain phrase")
		outPath     = flag.String("out", "-", "raw log output path (- for stdout)")
		truthPath   = flag.String("truth", "", "write injected ground truth JSON here")
		chainsPath  = flag.String("chains", "", "write the dialect's failure chains JSON here")
		tplPath     = flag.String("templates", "", "write the dialect's template inventory JSON here")
		streamAddr  = flag.String("stream", "", "stream the log over TCP to these aarohid addresses (comma-separated: lines spray round-robin) instead of writing -out")
		rate        = flag.Float64("rate", 0, "with -stream: target lines/sec (0 = unpaced)")
		retries     = flag.Int("retries", 5, "with -stream: reconnect attempts after a refused or dropped connection")
		backoff     = flag.Duration("retry-backoff", 500*time.Millisecond, "with -stream: initial reconnect delay, doubled per consecutive failure (capped at 30s)")
		heartbeat   = flag.Duration("heartbeat", 0, "emit a heartbeat stream at this per-node interval instead of a failure-chain log")
		hbJitter    = flag.Float64("hb-jitter", 0.1, "with -heartbeat: fractional jitter on each beat gap")
		hbFlaps     = flag.Int("hb-flaps", 0, "with -heartbeat: flap episodes to inject round-robin across nodes")
		hbFlapLen   = flag.Duration("hb-flap-silence", 0, "with -heartbeat: length of each flap silence (default 10x interval)")
	)
	flag.Parse()
	if *retries < 0 {
		fatalf("-retries must be non-negative, not %d", *retries)
	}
	if *backoff <= 0 {
		fatalf("-retry-backoff must be positive, not %s", *backoff)
	}

	d, ok := dialects()[*dialectName]
	if !ok {
		fatalf("unknown dialect %q (have: %s)", *dialectName, strings.Join(dialectNames(), ", "))
	}
	var (
		log   *loggen.Log
		flaps []loggen.FlapEpisode
		err   error
	)
	if *heartbeat > 0 {
		// Heartbeat mode: -drop becomes the per-beat drop probability and
		// -failures/-benign-rate/-anomaly-rate do not apply.
		log, flaps, err = loggen.GenerateHeartbeats(loggen.HeartbeatConfig{
			Dialect: d, Seed: *seed, Duration: *duration, Nodes: *nodes,
			Interval: *heartbeat, Jitter: *hbJitter, DropProb: *dropProb,
			Flaps: *hbFlaps, FlapSilence: *hbFlapLen,
		})
	} else {
		if *hbFlaps != 0 || *hbFlapLen != 0 {
			fatalf("-hb-flaps/-hb-flap-silence require -heartbeat")
		}
		log, err = loggen.Generate(loggen.Config{
			Dialect: d, Seed: *seed, Duration: *duration, Nodes: *nodes,
			Failures: *failures, BenignPerMinute: *benignRate,
			AnomalyRate: *anomalyRate, DropProb: *dropProb,
		})
	}
	if err != nil {
		fatalf("%v", err)
	}

	if *streamAddr != "" {
		streamLog(log, *streamAddr, *rate, *retries, *backoff)
	} else {
		var out io.Writer = os.Stdout
		if *outPath != "-" {
			f, err := os.Create(*outPath)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			out = f
		}
		if _, err := log.WriteTo(out); err != nil {
			fatalf("writing log: %v", err)
		}
	}

	if *truthPath != "" {
		if *heartbeat > 0 {
			writeJSON(*truthPath, flaps)
		} else {
			writeJSON(*truthPath, log.Failures)
		}
	}
	if *chainsPath != "" {
		f, err := os.Create(*chainsPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := core.WriteChains(f, d.Chains()); err != nil {
			fatalf("writing chains: %v", err)
		}
		f.Close()
	}
	if *tplPath != "" {
		f, err := os.Create(*tplPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := core.WriteTemplates(f, d.Inventory()); err != nil {
			fatalf("writing templates: %v", err)
		}
		f.Close()
	}
	if *heartbeat > 0 {
		fmt.Fprintf(os.Stderr, "loggen: %d heartbeats at %s cadence, %d injected flaps on %s\n",
			len(log.Events), *heartbeat, len(flaps), d.Name)
	} else {
		fmt.Fprintf(os.Stderr, "loggen: %d events, %d injected failures on %s\n",
			len(log.Events), len(log.Failures), d.Name)
	}
}

// streamLog sends every line over the TCP line protocol. addrSpec is a
// comma-separated target list: one address streams the whole log to that
// daemon; several spray lines across them round-robin (line i goes to target
// i mod N, each target paced at rate/N so the aggregate hits -rate) — the
// multi-ingest workload an aarohid cluster sees, where placement, not the
// entry point, decides which peer predicts a node. Ctrl-C aborts cleanly.
func streamLog(log *loggen.Log, addrSpec string, rate float64, retries int, backoff time.Duration) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	lines := log.Lines()
	var addrs []string
	for _, a := range strings.Split(addrSpec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fatalf("-stream needs at least one address")
	}
	start := time.Now()
	if len(addrs) == 1 {
		if err := streamTo(ctx, addrs[0], lines, rate, retries, backoff); err != nil {
			fatalf("%v", err)
		}
	} else {
		per := make([][]string, len(addrs))
		for i, line := range lines {
			per[i%len(addrs)] = append(per[i%len(addrs)], line)
		}
		var wg sync.WaitGroup
		errs := make([]error, len(addrs))
		for i := range addrs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = streamTo(ctx, addrs[i], per[i], rate/float64(len(addrs)), retries, backoff)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				fatalf("%v", err)
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "loggen: streamed %d lines to %s in %s (%.0f lines/sec)\n",
		len(lines), strings.Join(addrs, ","), elapsed.Round(time.Millisecond),
		float64(len(lines))/elapsed.Seconds())
}

// streamTo delivers lines to one daemon, paced at rate lines/sec. Refused and
// dropped connections are retried with exponential backoff up to `retries`
// consecutive failures, resuming from the first undelivered line; any
// delivered line resets the failure budget.
func streamTo(ctx context.Context, addr string, lines []string, rate float64, retries int, backoff time.Duration) error {
	left := lines
	failures := 0
	for {
		conn, err := serve.DialLines(addr)
		if err == nil {
			var sent int
			sent, err = serve.StreamLines(ctx, conn, left, rate)
			if cerr := conn.Close(); err == nil && cerr != nil {
				// Everything was flushed; a barrier failure only means
				// delivery of the tail is unconfirmed. Not worth re-sending.
				fmt.Fprintf(os.Stderr, "loggen: closing stream to %s: %v\n", addr, cerr)
			}
			left = left[sent:]
			if sent > 0 {
				failures = 0
			}
			if err == nil {
				return nil
			}
		}
		if ctx.Err() != nil {
			return fmt.Errorf("interrupted: %d/%d lines delivered to %s", len(lines)-len(left), len(lines), addr)
		}
		if failures >= retries {
			return fmt.Errorf("streaming to %s: %v (gave up after %d consecutive failures, %d/%d lines delivered)",
				addr, err, failures, len(lines)-len(left), len(lines))
		}
		delay := backoff << uint(min(failures, 16)) // shift cap avoids overflow
		if delay <= 0 || delay > 30*time.Second {
			delay = 30 * time.Second
		}
		failures++
		fmt.Fprintf(os.Stderr, "loggen: stream to %s failed: %v; retry %d/%d in %s (%d/%d lines delivered)\n",
			addr, err, failures, retries, delay, len(lines)-len(left), len(lines))
		select {
		case <-ctx.Done():
		case <-time.After(delay):
		}
	}
}

func dialectNames() []string {
	var names []string
	for k := range dialects() {
		names = append(names, k)
	}
	return names
}

func writeJSON(path string, v any) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("encoding %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loggen: "+format+"\n", args...)
	os.Exit(1)
}
