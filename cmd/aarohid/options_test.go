package main

import (
	"errors"
	"flag"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/wal"
)

// TestParseOptions drives the flag surface end to end: every validation
// branch returns an error naming the offending flag, and valid inputs land in
// typed fields with the documented defaults.
func TestParseOptions(t *testing.T) {
	base := []string{"-chains", "c.json", "-templates", "t.json"}
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the returned error; "" = must succeed
		check   func(t *testing.T, o *options)
	}{
		{
			name: "defaults",
			args: base,
			check: func(t *testing.T, o *options) {
				if o.ChainsPath != "c.json" || o.TemplatesPath != "t.json" {
					t.Errorf("paths = %q, %q", o.ChainsPath, o.TemplatesPath)
				}
				if o.TCPAddr != ":7743" || o.HTTPAddr != ":7780" {
					t.Errorf("addrs = %q, %q", o.TCPAddr, o.HTTPAddr)
				}
				if o.QueueSize != 4096 || o.BatchMax != 256 || o.BatchAge != 0 {
					t.Errorf("queue/batch = %d, %d, %s", o.QueueSize, o.BatchMax, o.BatchAge)
				}
				if o.Overflow != serve.Block {
					t.Errorf("overflow = %v, want block", o.Overflow)
				}
				if o.Fsync != wal.SyncBatch {
					t.Errorf("fsync = %v, want batch", o.Fsync)
				}
				if o.Shards != 1 {
					t.Errorf("shards = %d, want 1", o.Shards)
				}
				if o.ReadTimeout != 5*time.Minute || o.Grace != 30*time.Second {
					t.Errorf("read-timeout/grace = %s, %s", o.ReadTimeout, o.Grace)
				}
				if o.Arbiter != nil {
					t.Errorf("arbiter enabled by default")
				}
			},
		},
		{
			name:    "missing chains and templates",
			args:    nil,
			wantErr: "-chains and -templates are required",
		},
		{
			name:    "missing templates",
			args:    []string{"-chains", "c.json"},
			wantErr: "-chains and -templates are required",
		},
		{
			name: "overflow shed",
			args: append(base, "-overflow", "shed"),
			check: func(t *testing.T, o *options) {
				if o.Overflow != serve.Shed {
					t.Errorf("overflow = %v, want shed", o.Overflow)
				}
			},
		},
		{
			name:    "overflow bogus",
			args:    append(base, "-overflow", "drop"),
			wantErr: `-overflow must be block or shed, not "drop"`,
		},
		{
			name: "fsync always",
			args: append(base, "-fsync", "always"),
			check: func(t *testing.T, o *options) {
				if o.Fsync != wal.SyncAlways {
					t.Errorf("fsync = %v, want always", o.Fsync)
				}
			},
		},
		{
			name:    "fsync bogus",
			args:    append(base, "-fsync", "sometimes"),
			wantErr: `-fsync must be always, batch or off, not "sometimes"`,
		},
		{
			name:    "queue zero",
			args:    append(base, "-queue", "0"),
			wantErr: "-queue must be >= 1, not 0",
		},
		{
			name:    "ingest-batch zero",
			args:    append(base, "-ingest-batch", "0"),
			wantErr: "-ingest-batch must be >= 1, not 0",
		},
		{
			name:    "negative batch age",
			args:    append(base, "-ingest-batch-age", "-1s"),
			wantErr: "-ingest-batch-age must be a non-negative duration",
		},
		{
			name: "shards four",
			args: append(base, "-shards", "4"),
			check: func(t *testing.T, o *options) {
				if o.Shards != 4 {
					t.Errorf("shards = %d, want 4", o.Shards)
				}
			},
		},
		{
			name:    "shards zero",
			args:    append(base, "-shards", "0"),
			wantErr: "-shards must be >= 1, not 0",
		},
		{
			name:    "negative watch",
			args:    append(base, "-watch", "-5s"),
			wantErr: "-watch must be a non-negative duration",
		},
		{
			name: "arbiter with tiers",
			args: append(base, "-arbiter", "-horizon", "5m", "-alert-threshold", "0.7",
				"-criticality", "nid001=1,nid002=2", "-tier-weights", "4,1"),
			check: func(t *testing.T, o *options) {
				if o.Arbiter == nil {
					t.Fatal("arbiter config missing")
				}
				if o.Arbiter.Horizon != 5*time.Minute || o.Arbiter.AlertThreshold != 0.7 {
					t.Errorf("arbiter = %+v", o.Arbiter)
				}
				if len(o.Arbiter.Criticality) != 2 || len(o.Arbiter.TierWeights) != 2 {
					t.Errorf("criticality/weights = %v, %v", o.Arbiter.Criticality, o.Arbiter.TierWeights)
				}
			},
		},
		{
			name:    "criticality without arbiter",
			args:    append(base, "-criticality", "nid001=1"),
			wantErr: "-criticality/-tier-weights require -arbiter",
		},
		{
			name: "cluster mode",
			args: append(base, "-gossip-addr", ":7799", "-join", "host1:7799, host2:7799,",
				"-peer-name", "smw-a", "-probe-interval", "100ms"),
			check: func(t *testing.T, o *options) {
				c := o.Cluster
				if c == nil {
					t.Fatal("cluster config missing")
				}
				if c.Name != "smw-a" || c.GossipAddr != ":7799" {
					t.Errorf("cluster = %+v", c)
				}
				if len(c.Join) != 2 || c.Join[0] != "host1:7799" || c.Join[1] != "host2:7799" {
					t.Errorf("join = %v (empty entries and spaces must be dropped)", c.Join)
				}
				if c.ProbeInterval != 100*time.Millisecond {
					t.Errorf("probe interval = %s", c.ProbeInterval)
				}
			},
		},
		{
			name: "cluster peer name defaults to hostname",
			args: append(base, "-gossip-addr", ":7799"),
			check: func(t *testing.T, o *options) {
				if o.Cluster == nil || o.Cluster.Name == "" {
					t.Fatalf("cluster = %+v, want hostname peer name", o.Cluster)
				}
			},
		},
		{
			name:    "join without gossip-addr",
			args:    append(base, "-join", "host1:7799"),
			wantErr: "-join requires -gossip-addr",
		},
		{
			name:    "suspect-timeout without gossip-addr",
			args:    append(base, "-suspect-timeout", "2s"),
			wantErr: "-probe-interval/-suspect-timeout require -gossip-addr",
		},
		{
			name:    "unknown flag",
			args:    append(base, "-no-such-flag"),
			wantErr: "flag provided but not defined",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseOptions(tc.args, io.Discard)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseOptions(%v) succeeded, want error containing %q", tc.args, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %q, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseOptions(%v): %v", tc.args, err)
			}
			if tc.check != nil {
				tc.check(t, o)
			}
		})
	}
}

// TestParseOptionsHelp: -h must surface flag.ErrHelp so main exits 0, not 2.
func TestParseOptionsHelp(t *testing.T) {
	_, err := parseOptions([]string{"-h"}, io.Discard)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("err = %v, want flag.ErrHelp", err)
	}
}

// TestServeConfigMapping: the options->serve.Config mapping carries the shard
// count and overflow policy through and survives serve's own validation.
func TestServeConfigMapping(t *testing.T) {
	o, err := parseOptions([]string{
		"-chains", "c.json", "-templates", "t.json",
		"-shards", "4", "-overflow", "shed", "-queue", "128",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	cfg := o.serveConfig(nil)
	if cfg.Shards != 4 || cfg.Overflow != serve.Shed || cfg.QueueSize != 128 {
		t.Errorf("cfg = shards=%d overflow=%v queue=%d", cfg.Shards, cfg.Overflow, cfg.QueueSize)
	}
	// Shards > 1 without a model must be rejected by serve.Config.Validate —
	// the daemon always passes a model, but the contract lives there.
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted shards>1 without a model")
	}
}
