package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	aarohi "repro"
	"repro/internal/arbiter"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/wal"
)

// options is every aarohid setting, parsed and validated in one place.
// parseOptions is the only reader of os.Args-shaped input; everything after
// it consumes typed, checked fields — no string re-parsing downstream.
type options struct {
	ChainsPath    string
	TemplatesPath string

	Timeout     time.Duration
	NoFactoring bool
	Workers     int

	TCPAddr     string
	HTTPAddr    string
	QueueSize   int
	BatchMax    int
	BatchAge    time.Duration
	Overflow    serve.OverflowPolicy
	ReadTimeout time.Duration
	MaxLineLen  int
	Grace       time.Duration
	Shards      int

	DataDir          string
	SnapshotInterval time.Duration
	Fsync            wal.SyncPolicy

	Watch   time.Duration
	Arbiter *arbiter.Config

	Cluster *serve.ClusterConfig
}

// parseOptions parses args (os.Args[1:] shape) into a validated options
// value. Errors are returned, not fatal: flag-syntax errors come from the
// FlagSet (which has already printed usage to stderr), validation errors are
// printed here in the same style. flag.ErrHelp passes through for -h.
func parseOptions(args []string, stderr io.Writer) (*options, error) {
	fs := flag.NewFlagSet("aarohid", flag.ContinueOnError)
	fs.SetOutput(stderr)

	var o options
	fs.StringVar(&o.ChainsPath, "chains", "", "failure chains JSON (required)")
	fs.StringVar(&o.TemplatesPath, "templates", "", "template inventory JSON (required)")
	fs.DurationVar(&o.Timeout, "timeout", 0, "ΔT timeout override (default 4m)")
	fs.BoolVar(&o.NoFactoring, "no-factoring", false, "disable subchain factoring (ablation)")
	fs.IntVar(&o.Workers, "workers", 0, "predictor worker goroutines per shard (0 = GOMAXPROCS)")
	fs.StringVar(&o.TCPAddr, "tcp", ":7743", "TCP line-protocol listen address (\"off\" disables)")
	fs.StringVar(&o.HTTPAddr, "http", ":7780", "HTTP listen address (\"off\" disables)")
	fs.IntVar(&o.QueueSize, "queue", 4096, "ingest queue depth (lines)")
	fs.IntVar(&o.BatchMax, "ingest-batch", 256, "max lines coalesced into one WAL group-append and predictor batch (1 = per-line)")
	fs.DurationVar(&o.BatchAge, "ingest-batch-age", 0, "max wait for a partial ingest batch to fill (0 = dispatch as soon as the queue is empty)")
	fs.DurationVar(&o.ReadTimeout, "read-timeout", 5*time.Minute, "per-connection idle read deadline")
	fs.IntVar(&o.MaxLineLen, "max-line", 1<<20, "maximum log line length (bytes)")
	fs.DurationVar(&o.Grace, "grace", 30*time.Second, "drain budget after SIGTERM/SIGINT")
	fs.IntVar(&o.Shards, "shards", 1, "local prediction shards; lines route by consistent-hashing the node ID")
	fs.StringVar(&o.DataDir, "data-dir", "", "durability directory (WAL + snapshots); empty disables persistence")
	fs.DurationVar(&o.SnapshotInterval, "snapshot-interval", 0, "period between parse-state snapshots (0 = only on graceful shutdown)")
	fs.DurationVar(&o.Watch, "watch", 0, "poll -chains/-templates for changes at this interval and hot-reload (0 = off)")

	var (
		gossipAddr      = fs.String("gossip-addr", "", "UDP bind address for cluster membership probes; enables cluster mode")
		join            = fs.String("join", "", "comma-separated seed peers' gossip addresses to join")
		peerName        = fs.String("peer-name", "", "cluster-unique peer name (default: hostname)")
		gossipAdvertise = fs.String("gossip-advertise", "", "gossip address peers should probe back (default: the bound -gossip-addr)")
		advertiseLine   = fs.String("advertise-line", "", "line-protocol address peers forward lines and ship WAL segments to (default: the bound -tcp address)")
		probeInterval   = fs.Duration("probe-interval", 0, "gossip probe cadence (default 250ms)")
		suspectTimeout  = fs.Duration("suspect-timeout", 0, "how long a suspected peer may stay silent before it is confirmed dead (default 8×probe interval)")
	)

	var (
		overflow    = fs.String("overflow", "block", "queue-full policy: block (backpressure) or shed (drop+count)")
		fsync       = fs.String("fsync", "batch", "WAL fsync policy: always (no acked loss), batch (bounded loss), off")
		arbEnabled  = fs.Bool("arbiter", false, "enable failure arbitration: phi-accrual heartbeats fused with chain evidence into ranked alerts (/predictions?mode=alerts)")
		horizon     = fs.Duration("horizon", 10*time.Minute, "arbiter prediction horizon M (chain evidence lifetime, TP/FP window)")
		alertThresh = fs.Float64("alert-threshold", 0.5, "minimum fused probability for a node to alert")
		criticality = fs.String("criticality", "", "per-node criticality tiers, \"node=tier,node=tier\" (1 = most critical)")
		tierWeights = fs.String("tier-weights", "", "ranking weight per tier, \"4,2,1\" (highest tier first)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	fail := func(format string, args ...any) (*options, error) {
		err := fmt.Errorf(format, args...)
		fmt.Fprintf(stderr, "aarohid: %v\n", err)
		fs.Usage()
		return nil, err
	}

	if o.ChainsPath == "" || o.TemplatesPath == "" {
		return fail("-chains and -templates are required")
	}
	switch *overflow {
	case "block":
		o.Overflow = serve.Block
	case "shed":
		o.Overflow = serve.Shed
	default:
		return fail("-overflow must be block or shed, not %q", *overflow)
	}
	sync, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		return fail("-fsync must be always, batch or off, not %q", *fsync)
	}
	o.Fsync = sync
	if o.QueueSize < 1 {
		return fail("-queue must be >= 1, not %d", o.QueueSize)
	}
	if o.BatchMax < 1 {
		return fail("-ingest-batch must be >= 1, not %d", o.BatchMax)
	}
	if o.BatchAge < 0 {
		return fail("-ingest-batch-age must be a non-negative duration, not %s", o.BatchAge)
	}
	if o.Shards < 1 {
		return fail("-shards must be >= 1, not %d", o.Shards)
	}
	if o.Watch < 0 {
		return fail("-watch must be a non-negative duration, not %s", o.Watch)
	}

	if *arbEnabled {
		crit, err := arbiter.ParseCriticality(*criticality)
		if err != nil {
			return fail("-criticality: %v", err)
		}
		weights, err := arbiter.ParseTierWeights(*tierWeights)
		if err != nil {
			return fail("-tier-weights: %v", err)
		}
		o.Arbiter = &arbiter.Config{
			Horizon:        *horizon,
			AlertThreshold: *alertThresh,
			Criticality:    crit,
			TierWeights:    weights,
		}
	} else if *criticality != "" || *tierWeights != "" {
		return fail("-criticality/-tier-weights require -arbiter")
	}

	if *gossipAddr != "" {
		name := *peerName
		if name == "" {
			host, err := os.Hostname()
			if err != nil || host == "" {
				return fail("-peer-name is required when the hostname is unavailable")
			}
			name = host
		}
		o.Cluster = &serve.ClusterConfig{
			Name:           name,
			GossipAddr:     *gossipAddr,
			Advertise:      *gossipAdvertise,
			AdvertiseLine:  *advertiseLine,
			Join:           splitPeers(*join),
			ProbeInterval:  *probeInterval,
			SuspectTimeout: *suspectTimeout,
		}
	} else {
		for flagName, v := range map[string]string{
			"-join": *join, "-peer-name": *peerName,
			"-gossip-advertise": *gossipAdvertise, "-advertise-line": *advertiseLine,
		} {
			if v != "" {
				return fail("%s requires -gossip-addr (cluster mode)", flagName)
			}
		}
		if *probeInterval != 0 || *suspectTimeout != 0 {
			return fail("-probe-interval/-suspect-timeout require -gossip-addr (cluster mode)")
		}
	}
	return &o, nil
}

// splitPeers parses a comma-separated peer address list, dropping empty
// entries ("a,b," is sloppy shell interpolation, not an error).
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// predictorOptions is the compile-time model configuration the flags select.
func (o *options) predictorOptions() aarohi.Options {
	return aarohi.Options{Timeout: o.Timeout, DisableFactoring: o.NoFactoring}
}

// serveConfig assembles the server configuration from the validated options.
// serve.Config.Validate runs again inside Start — this function only maps
// fields, it adds no policy of its own.
func (o *options) serveConfig(model *registry.Model) serve.Config {
	return serve.Config{
		TCPAddr:          o.TCPAddr,
		HTTPAddr:         o.HTTPAddr,
		QueueSize:        o.QueueSize,
		BatchMax:         o.BatchMax,
		BatchAge:         o.BatchAge,
		Overflow:         o.Overflow,
		ReadTimeout:      o.ReadTimeout,
		MaxLineLen:       o.MaxLineLen,
		Logf:             log.Printf,
		DataDir:          o.DataDir,
		SnapshotInterval: o.SnapshotInterval,
		Fsync:            o.Fsync,
		Model:            model,
		Workers:          o.Workers,
		Shards:           o.Shards,
		Arbiter:          o.Arbiter,
		Cluster:          o.Cluster,
	}
}
