// Command aarohid runs the online node-failure predictor as a long-lived
// streaming daemon — the paper's Fig. 16 deployment: a service on the SMW
// consuming the live aggregate HSS log stream.
//
// Usage:
//
//	aarohid -chains chains.json -templates templates.json \
//	        [-tcp :7743] [-http :7780] [-queue 4096] [-overflow block|shed]
//
// Log lines arrive over the TCP line protocol (newline-framed, same format
// as cmd/aarohi stdin — `loggen -stream` is a ready-made load source) or as
// NDJSON batches on POST /ingest. Predictions stream to any number of
// subscribers on GET /predictions; /healthz, /readyz and /statusz expose
// liveness, drain state and live counters. SIGINT/SIGTERM triggers a
// graceful drain: accepted lines are flushed through the predictor before
// the final stats report prints.
//
// The model is hot-swappable while the daemon runs: the admin API
// (POST /model, /model/activate, /model/rollback, /model/shadow) manages
// versioned models through the registry, SIGHUP re-reads -chains and
// -templates and activates the result, and -watch polls those files for
// changes and does the same automatically. Swaps lose no accepted lines —
// ingest pauses at a line boundary while per-node parse state migrates.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	aarohi "repro"
	"repro/internal/arbiter"
	"repro/internal/predictor"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/wal"
)

func main() {
	var (
		chainsPath = flag.String("chains", "", "failure chains JSON (required)")
		tplPath    = flag.String("templates", "", "template inventory JSON (required)")
		timeout    = flag.Duration("timeout", 0, "ΔT timeout override (default 4m)")
		noFactor   = flag.Bool("no-factoring", false, "disable subchain factoring (ablation)")
		workers    = flag.Int("workers", 0, "predictor worker goroutines (0 = GOMAXPROCS)")
		tcpAddr    = flag.String("tcp", ":7743", "TCP line-protocol listen address (\"off\" disables)")
		httpAddr   = flag.String("http", ":7780", "HTTP listen address (\"off\" disables)")
		queueSize  = flag.Int("queue", 4096, "ingest queue depth (lines)")
		batchMax   = flag.Int("ingest-batch", 256, "max lines coalesced into one WAL group-append and predictor batch (1 = per-line)")
		batchAge   = flag.Duration("ingest-batch-age", 0, "max wait for a partial ingest batch to fill (0 = dispatch as soon as the queue is empty)")
		overflow   = flag.String("overflow", "block", "queue-full policy: block (backpressure) or shed (drop+count)")
		readTO     = flag.Duration("read-timeout", 5*time.Minute, "per-connection idle read deadline")
		maxLine    = flag.Int("max-line", 1<<20, "maximum log line length (bytes)")
		grace      = flag.Duration("grace", 30*time.Second, "drain budget after SIGTERM/SIGINT")
		dataDir    = flag.String("data-dir", "", "durability directory (WAL + snapshots); empty disables persistence")
		snapEvery  = flag.Duration("snapshot-interval", 0, "period between parse-state snapshots (0 = only on graceful shutdown)")
		fsync      = flag.String("fsync", "batch", "WAL fsync policy: always (no acked loss), batch (bounded loss), off")
		watch      = flag.Duration("watch", 0, "poll -chains/-templates for changes at this interval and hot-reload (0 = off)")

		arbEnabled  = flag.Bool("arbiter", false, "enable failure arbitration: phi-accrual heartbeats fused with chain evidence into ranked alerts (/predictions?mode=alerts)")
		horizon     = flag.Duration("horizon", 10*time.Minute, "arbiter prediction horizon M (chain evidence lifetime, TP/FP window)")
		alertThresh = flag.Float64("alert-threshold", 0.5, "minimum fused probability for a node to alert")
		criticality = flag.String("criticality", "", "per-node criticality tiers, \"node=tier,node=tier\" (1 = most critical)")
		tierWeights = flag.String("tier-weights", "", "ranking weight per tier, \"4,2,1\" (highest tier first)")
	)
	flag.Parse()
	if *chainsPath == "" || *tplPath == "" {
		fatalUsage("-chains and -templates are required")
	}
	var policy serve.OverflowPolicy
	switch *overflow {
	case "block":
		policy = serve.Block
	case "shed":
		policy = serve.Shed
	default:
		fatalUsage("-overflow must be block or shed, not %q", *overflow)
	}

	syncPolicy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fatalUsage("-fsync must be always, batch or off, not %q", *fsync)
	}
	if *batchMax < 1 {
		fatalUsage("-ingest-batch must be >= 1, not %d", *batchMax)
	}
	if *batchAge < 0 {
		fatalUsage("-ingest-batch-age must be a non-negative duration, not %s", *batchAge)
	}
	if *watch < 0 {
		fatalUsage("-watch must be a non-negative duration, not %s", *watch)
	}

	var arbCfg *arbiter.Config
	if *arbEnabled {
		crit, err := arbiter.ParseCriticality(*criticality)
		if err != nil {
			fatalUsage("-criticality: %v", err)
		}
		weights, err := arbiter.ParseTierWeights(*tierWeights)
		if err != nil {
			fatalUsage("-tier-weights: %v", err)
		}
		arbCfg = &arbiter.Config{
			Horizon:        *horizon,
			AlertThreshold: *alertThresh,
			Criticality:    crit,
			TierWeights:    weights,
		}
	} else if *criticality != "" || *tierWeights != "" {
		fatalUsage("-criticality/-tier-weights require -arbiter")
	}

	chains := readChains(*chainsPath)
	inventory := readTemplates(*tplPath)
	opts := aarohi.Options{Timeout: *timeout, DisableFactoring: *noFactor}

	mgr, err := predictor.NewManager(chains, inventory, opts, *workers)
	if err != nil {
		fatalf("%v", err)
	}

	srv := serve.New(mgr, serve.Config{
		TCPAddr:          *tcpAddr,
		HTTPAddr:         *httpAddr,
		QueueSize:        *queueSize,
		BatchMax:         *batchMax,
		BatchAge:         *batchAge,
		Overflow:         policy,
		ReadTimeout:      *readTO,
		MaxLineLen:       *maxLine,
		Logf:             log.Printf,
		DataDir:          *dataDir,
		SnapshotInterval: *snapEvery,
		Fsync:            syncPolicy,
		Model:            &registry.Model{Chains: chains, Templates: inventory, Options: opts},
		Workers:          *workers,
		Arbiter:          arbCfg,
	})
	// Catch shutdown signals before the listeners open: once /readyz answers,
	// a SIGTERM must always drain gracefully, never hit the default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := srv.Start(); err != nil {
		fatalf("%v", err)
	}
	if st := srv.Status(); st.Recovery != nil && st.Recovery.Performed {
		log.Printf("aarohid: recovered snapshot@%d + %d replayed lines (%d outputs) in %.3fs",
			st.Recovery.SnapshotIndex, st.Recovery.ReplayedRecords,
			st.Recovery.RecoveredOutputs, st.Recovery.DurationSeconds)
	}
	if a := srv.TCPAddr(); a != nil {
		log.Printf("aarohid: tcp line protocol on %s", a)
	}
	if a := srv.HTTPAddr(); a != nil {
		log.Printf("aarohid: http api on %s (/ingest /predictions /healthz /readyz /statusz)", a)
	}
	log.Printf("aarohid: %d chains, queue=%d overflow=%s batch=%d/%s", len(chains), *queueSize, policy, *batchMax, *batchAge)
	if arbCfg != nil {
		log.Printf("aarohid: arbiter on: horizon=%s alert-threshold=%g tiers=%d", *horizon, *alertThresh, len(arbCfg.Criticality))
	}
	if *dataDir != "" {
		log.Printf("aarohid: durability on: data-dir=%s fsync=%s snapshot-interval=%s", *dataDir, syncPolicy, *snapEvery)
	}
	if st := srv.Status(); st.Model != nil {
		log.Printf("aarohid: model registry active=%s (%d versions); POST /model, SIGHUP and -watch hot-swap",
			st.Model.Active, st.Model.Versions)
	}

	// Hot-reload sources: SIGHUP re-reads -chains/-templates on demand; -watch
	// polls their mtimes. Both funnel into reloadModel, which vets, admits and
	// activates the files' current contents with zero accepted-line loss.
	stopReload := make(chan struct{})
	reloadDone := make(chan struct{})
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		defer close(reloadDone)
		var last [2]fileStamp
		if *watch > 0 {
			last[0], last[1] = stampFile(*chainsPath), stampFile(*tplPath)
		}
		ticker := time.NewTicker(watchInterval(*watch))
		defer ticker.Stop()
		for {
			select {
			case <-stopReload:
				return
			case <-hup:
				reloadModel(srv, *chainsPath, *tplPath, opts, "sighup")
				if *watch > 0 {
					last[0], last[1] = stampFile(*chainsPath), stampFile(*tplPath)
				}
			case <-ticker.C:
				if *watch == 0 {
					continue
				}
				cur := [2]fileStamp{stampFile(*chainsPath), stampFile(*tplPath)}
				if cur != last && cur[0].ok && cur[1].ok {
					last = cur
					reloadModel(srv, *chainsPath, *tplPath, opts, "watch")
				}
			}
		}
	}()

	<-ctx.Done()
	stop()
	signal.Stop(hup)
	close(stopReload)
	<-reloadDone
	log.Printf("aarohid: draining (budget %s)...", *grace)
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("aarohid: shutdown: %v", err)
	}

	st := srv.Status()
	fmt.Println("--- final stats ---")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		fatalf("%v", err)
	}
}

// watchInterval sizes the poll ticker; a disabled watcher still needs a live
// (but inert) ticker so the reload loop's select stays simple.
func watchInterval(d time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return time.Hour
}

// fileStamp is the change-detection identity of a watched file.
type fileStamp struct {
	ok      bool
	size    int64
	modTime time.Time
}

func stampFile(path string) fileStamp {
	fi, err := os.Stat(path)
	if err != nil {
		return fileStamp{}
	}
	return fileStamp{ok: true, size: fi.Size(), modTime: fi.ModTime()}
}

// reloadModel re-reads the chains and templates files and admits + activates
// the result as the live model. Errors are logged, never fatal: a reload that
// fails to parse, is rejected by the vet gate, or does not compile leaves the
// running model untouched.
func reloadModel(srv *serve.Server, chainsPath, tplPath string, opts aarohi.Options, trigger string) {
	chains, err := loadChains(chainsPath)
	if err != nil {
		log.Printf("aarohid: %s reload: %v", trigger, err)
		return
	}
	inventory, err := loadTemplates(tplPath)
	if err != nil {
		log.Printf("aarohid: %s reload: %v", trigger, err)
		return
	}
	m := registry.Model{Chains: chains, Templates: inventory, Options: opts}
	entry, rep, swap, err := srv.LoadModel(m, trigger, true)
	if err != nil {
		if errors.Is(err, registry.ErrRejected) && rep != nil {
			for _, f := range rep.Findings {
				log.Printf("aarohid: %s reload: vet %s: [%s] %s: %s", trigger, f.Severity, f.Check, f.Subject, f.Message)
			}
		}
		log.Printf("aarohid: %s reload failed, keeping current model: %v", trigger, err)
		return
	}
	if swap == nil || swap.From == swap.To {
		log.Printf("aarohid: %s reload: model %s already active", trigger, entry.Fingerprint)
		return
	}
	log.Printf("aarohid: %s reload: swapped %s -> %s (state carried=%v migrated=%d reset=%d pause=%.3fs)",
		trigger, swap.From, swap.To, swap.StateCarried, swap.MigratedNodes, swap.ResetNodes, swap.PauseSeconds)
}

func readChains(path string) []aarohi.FailureChain {
	chains, err := loadChains(path)
	if err != nil {
		fatalf("%v", err)
	}
	return chains
}

func readTemplates(path string) []aarohi.Template {
	ts, err := loadTemplates(path)
	if err != nil {
		fatalf("%v", err)
	}
	return ts
}

func loadChains(path string) ([]aarohi.FailureChain, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return aarohi.ReadChains(f)
}

func loadTemplates(path string) ([]aarohi.Template, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return aarohi.ReadTemplates(f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aarohid: "+format+"\n", args...)
	os.Exit(1)
}

// fatalUsage reports a flag error the way the flag package does: the message,
// then the full usage text, then exit 2.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aarohid: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
