// Command aarohid runs the online node-failure predictor as a long-lived
// streaming daemon — the paper's Fig. 16 deployment: a service on the SMW
// consuming the live aggregate HSS log stream.
//
// Usage:
//
//	aarohid -chains chains.json -templates templates.json \
//	        [-tcp :7743] [-http :7780] [-queue 4096] [-overflow block|shed] \
//	        [-shards 4] \
//	        [-gossip-addr :7799 -peer-name smw-a -join host:7799]
//
// Cluster mode (-gossip-addr) joins the daemon to an aarohid peer group:
// SWIM-style gossip membership tracks the fleet, every log line is placed on
// exactly one owning peer (lines landing elsewhere make one forwarding hop),
// each daemon WAL-ships its shards to its ring successor, and a confirmed
// peer death promotes the successor to owner of the dead peer's node IDs with
// its in-flight partial matches restored from the shipped journal. GET /peers
// serves the membership view.
//
// Log lines arrive over the TCP line protocol (newline-framed, same format
// as cmd/aarohi stdin — `loggen -stream` is a ready-made load source) or as
// NDJSON batches on POST /ingest. Predictions stream to any number of
// subscribers on GET /predictions; /healthz, /readyz and /statusz expose
// liveness, drain state and live counters. SIGINT/SIGTERM triggers a
// graceful drain: accepted lines are flushed through the predictor before
// the final stats report prints.
//
// The model is hot-swappable while the daemon runs: the admin API
// (POST /model, /model/activate, /model/rollback, /model/shadow) manages
// versioned models through the registry, SIGHUP re-reads -chains and
// -templates and activates the result, and -watch polls those files for
// changes and does the same automatically. Swaps lose no accepted lines —
// ingest pauses at a line boundary while per-node parse state migrates.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	aarohi "repro"
	"repro/internal/predictor"
	"repro/internal/registry"
	"repro/internal/serve"
)

func main() {
	o, err := parseOptions(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	if err != nil {
		os.Exit(2)
	}

	chains := readChains(o.ChainsPath)
	inventory := readTemplates(o.TemplatesPath)
	opts := o.predictorOptions()

	mgr, err := predictor.NewManager(chains, inventory, opts, o.Workers)
	if err != nil {
		fatalf("%v", err)
	}

	srv := serve.New(mgr, o.serveConfig(&registry.Model{
		Chains: chains, Templates: inventory, Options: opts,
	}))
	// Catch shutdown signals before the listeners open: once /readyz answers,
	// a SIGTERM must always drain gracefully, never hit the default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := srv.Start(); err != nil {
		fatalf("%v", err)
	}
	if st := srv.Status(); st.Recovery != nil && st.Recovery.Performed {
		log.Printf("aarohid: recovered snapshot@%d + %d replayed lines (%d outputs) in %.3fs",
			st.Recovery.SnapshotIndex, st.Recovery.ReplayedRecords,
			st.Recovery.RecoveredOutputs, st.Recovery.DurationSeconds)
	}
	if a := srv.TCPAddr(); a != nil {
		log.Printf("aarohid: tcp line protocol on %s", a)
	}
	if a := srv.HTTPAddr(); a != nil {
		log.Printf("aarohid: http api on %s (/ingest /predictions /healthz /readyz /statusz)", a)
	}
	log.Printf("aarohid: %d chains, shards=%d queue=%d overflow=%s batch=%d/%s",
		len(chains), o.Shards, o.QueueSize, o.Overflow, o.BatchMax, o.BatchAge)
	if o.Arbiter != nil {
		log.Printf("aarohid: arbiter on: horizon=%s alert-threshold=%g tiers=%d",
			o.Arbiter.Horizon, o.Arbiter.AlertThreshold, len(o.Arbiter.Criticality))
	}
	if o.Cluster != nil {
		log.Printf("aarohid: cluster peer %q gossip on %s join=%s (/peers lists membership)",
			o.Cluster.Name, srv.GossipAddr(), strings.Join(o.Cluster.Join, ","))
	}
	if o.DataDir != "" {
		log.Printf("aarohid: durability on: data-dir=%s fsync=%s snapshot-interval=%s", o.DataDir, o.Fsync, o.SnapshotInterval)
	}
	if st := srv.Status(); st.Model != nil {
		log.Printf("aarohid: model registry active=%s (%d versions); POST /model, SIGHUP and -watch hot-swap",
			st.Model.Active, st.Model.Versions)
	}

	// Hot-reload sources: SIGHUP re-reads -chains/-templates on demand; -watch
	// polls their mtimes. Both funnel into reloadModel, which vets, admits and
	// activates the files' current contents with zero accepted-line loss.
	stopReload := make(chan struct{})
	reloadDone := make(chan struct{})
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		defer close(reloadDone)
		var last [2]fileStamp
		if o.Watch > 0 {
			last[0], last[1] = stampFile(o.ChainsPath), stampFile(o.TemplatesPath)
		}
		ticker := time.NewTicker(watchInterval(o.Watch))
		defer ticker.Stop()
		for {
			select {
			case <-stopReload:
				return
			case <-hup:
				reloadModel(srv, o.ChainsPath, o.TemplatesPath, opts, "sighup")
				if o.Watch > 0 {
					last[0], last[1] = stampFile(o.ChainsPath), stampFile(o.TemplatesPath)
				}
			case <-ticker.C:
				if o.Watch == 0 {
					continue
				}
				cur := [2]fileStamp{stampFile(o.ChainsPath), stampFile(o.TemplatesPath)}
				if cur != last && cur[0].ok && cur[1].ok {
					last = cur
					reloadModel(srv, o.ChainsPath, o.TemplatesPath, opts, "watch")
				}
			}
		}
	}()

	<-ctx.Done()
	stop()
	signal.Stop(hup)
	close(stopReload)
	<-reloadDone
	log.Printf("aarohid: draining (budget %s)...", o.Grace)
	sctx, cancel := context.WithTimeout(context.Background(), o.Grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("aarohid: shutdown: %v", err)
	}

	st := srv.Status()
	fmt.Println("--- final stats ---")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		fatalf("%v", err)
	}
}

// watchInterval sizes the poll ticker; a disabled watcher still needs a live
// (but inert) ticker so the reload loop's select stays simple.
func watchInterval(d time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return time.Hour
}

// fileStamp is the change-detection identity of a watched file.
type fileStamp struct {
	ok      bool
	size    int64
	modTime time.Time
}

func stampFile(path string) fileStamp {
	fi, err := os.Stat(path)
	if err != nil {
		return fileStamp{}
	}
	return fileStamp{ok: true, size: fi.Size(), modTime: fi.ModTime()}
}

// reloadModel re-reads the chains and templates files and admits + activates
// the result as the live model. Errors are logged, never fatal: a reload that
// fails to parse, is rejected by the vet gate, or does not compile leaves the
// running model untouched.
func reloadModel(srv *serve.Server, chainsPath, tplPath string, opts aarohi.Options, trigger string) {
	chains, err := loadChains(chainsPath)
	if err != nil {
		log.Printf("aarohid: %s reload: %v", trigger, err)
		return
	}
	inventory, err := loadTemplates(tplPath)
	if err != nil {
		log.Printf("aarohid: %s reload: %v", trigger, err)
		return
	}
	m := registry.Model{Chains: chains, Templates: inventory, Options: opts}
	entry, rep, swap, err := srv.LoadModel(m, trigger, true)
	if err != nil {
		if errors.Is(err, registry.ErrRejected) && rep != nil {
			for _, f := range rep.Findings {
				log.Printf("aarohid: %s reload: vet %s: [%s] %s: %s", trigger, f.Severity, f.Check, f.Subject, f.Message)
			}
		}
		log.Printf("aarohid: %s reload failed, keeping current model: %v", trigger, err)
		return
	}
	if swap == nil || swap.From == swap.To {
		log.Printf("aarohid: %s reload: model %s already active", trigger, entry.Fingerprint)
		return
	}
	log.Printf("aarohid: %s reload: swapped %s -> %s (state carried=%v migrated=%d reset=%d pause=%.3fs)",
		trigger, swap.From, swap.To, swap.StateCarried, swap.MigratedNodes, swap.ResetNodes, swap.PauseSeconds)
}

func readChains(path string) []aarohi.FailureChain {
	chains, err := loadChains(path)
	if err != nil {
		fatalf("%v", err)
	}
	return chains
}

func readTemplates(path string) []aarohi.Template {
	ts, err := loadTemplates(path)
	if err != nil {
		fatalf("%v", err)
	}
	return ts
}

func loadChains(path string) ([]aarohi.FailureChain, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return aarohi.ReadChains(f)
}

func loadTemplates(path string) ([]aarohi.Template, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return aarohi.ReadTemplates(f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aarohid: "+format+"\n", args...)
	os.Exit(1)
}
