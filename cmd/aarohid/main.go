// Command aarohid runs the online node-failure predictor as a long-lived
// streaming daemon — the paper's Fig. 16 deployment: a service on the SMW
// consuming the live aggregate HSS log stream.
//
// Usage:
//
//	aarohid -chains chains.json -templates templates.json \
//	        [-tcp :7743] [-http :7780] [-queue 4096] [-overflow block|shed]
//
// Log lines arrive over the TCP line protocol (newline-framed, same format
// as cmd/aarohi stdin — `loggen -stream` is a ready-made load source) or as
// NDJSON batches on POST /ingest. Predictions stream to any number of
// subscribers on GET /predictions; /healthz, /readyz and /statusz expose
// liveness, drain state and live counters. SIGINT/SIGTERM triggers a
// graceful drain: accepted lines are flushed through the predictor before
// the final stats report prints.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	aarohi "repro"
	"repro/internal/predictor"
	"repro/internal/serve"
	"repro/internal/wal"
)

func main() {
	var (
		chainsPath = flag.String("chains", "", "failure chains JSON (required)")
		tplPath    = flag.String("templates", "", "template inventory JSON (required)")
		timeout    = flag.Duration("timeout", 0, "ΔT timeout override (default 4m)")
		noFactor   = flag.Bool("no-factoring", false, "disable subchain factoring (ablation)")
		workers    = flag.Int("workers", 0, "predictor worker goroutines (0 = GOMAXPROCS)")
		tcpAddr    = flag.String("tcp", ":7743", "TCP line-protocol listen address (\"off\" disables)")
		httpAddr   = flag.String("http", ":7780", "HTTP listen address (\"off\" disables)")
		queueSize  = flag.Int("queue", 4096, "ingest queue depth (lines)")
		overflow   = flag.String("overflow", "block", "queue-full policy: block (backpressure) or shed (drop+count)")
		readTO     = flag.Duration("read-timeout", 5*time.Minute, "per-connection idle read deadline")
		maxLine    = flag.Int("max-line", 1<<20, "maximum log line length (bytes)")
		grace      = flag.Duration("grace", 30*time.Second, "drain budget after SIGTERM/SIGINT")
		dataDir    = flag.String("data-dir", "", "durability directory (WAL + snapshots); empty disables persistence")
		snapEvery  = flag.Duration("snapshot-interval", 0, "period between parse-state snapshots (0 = only on graceful shutdown)")
		fsync      = flag.String("fsync", "batch", "WAL fsync policy: always (no acked loss), batch (bounded loss), off")
	)
	flag.Parse()
	if *chainsPath == "" || *tplPath == "" {
		fatalf("-chains and -templates are required")
	}
	var policy serve.OverflowPolicy
	switch *overflow {
	case "block":
		policy = serve.Block
	case "shed":
		policy = serve.Shed
	default:
		fatalf("-overflow must be block or shed, not %q", *overflow)
	}

	syncPolicy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fatalf("%v", err)
	}

	chains := readChains(*chainsPath)
	inventory := readTemplates(*tplPath)

	mgr, err := predictor.NewManager(chains, inventory, aarohi.Options{
		Timeout: *timeout, DisableFactoring: *noFactor,
	}, *workers)
	if err != nil {
		fatalf("%v", err)
	}

	srv := serve.New(mgr, serve.Config{
		TCPAddr:          *tcpAddr,
		HTTPAddr:         *httpAddr,
		QueueSize:        *queueSize,
		Overflow:         policy,
		ReadTimeout:      *readTO,
		MaxLineLen:       *maxLine,
		Logf:             log.Printf,
		DataDir:          *dataDir,
		SnapshotInterval: *snapEvery,
		Fsync:            syncPolicy,
	})
	if err := srv.Start(); err != nil {
		fatalf("%v", err)
	}
	if st := srv.Status(); st.Recovery != nil && st.Recovery.Performed {
		log.Printf("aarohid: recovered snapshot@%d + %d replayed lines (%d outputs) in %.3fs",
			st.Recovery.SnapshotIndex, st.Recovery.ReplayedRecords,
			st.Recovery.RecoveredOutputs, st.Recovery.DurationSeconds)
	}
	if a := srv.TCPAddr(); a != nil {
		log.Printf("aarohid: tcp line protocol on %s", a)
	}
	if a := srv.HTTPAddr(); a != nil {
		log.Printf("aarohid: http api on %s (/ingest /predictions /healthz /readyz /statusz)", a)
	}
	log.Printf("aarohid: %d chains, queue=%d overflow=%s", len(chains), *queueSize, policy)
	if *dataDir != "" {
		log.Printf("aarohid: durability on: data-dir=%s fsync=%s snapshot-interval=%s", *dataDir, syncPolicy, *snapEvery)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()
	log.Printf("aarohid: draining (budget %s)...", *grace)
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("aarohid: shutdown: %v", err)
	}

	st := srv.Status()
	fmt.Println("--- final stats ---")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		fatalf("%v", err)
	}
}

func readChains(path string) []aarohi.FailureChain {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	chains, err := aarohi.ReadChains(f)
	if err != nil {
		fatalf("%v", err)
	}
	return chains
}

func readTemplates(path string) []aarohi.Template {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	ts, err := aarohi.ReadTemplates(f)
	if err != nil {
		fatalf("%v", err)
	}
	return ts
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aarohid: "+format+"\n", args...)
	os.Exit(1)
}
