// Command aarohivet statically analyzes an Aarohi model — Phase-1 failure
// chains plus (optionally) the phrase-template inventory — for defects that
// make the online predictor misbehave: duplicate or shadowed chains, dead
// templates, overlapping scanner patterns, ΔT budgets the reset timeout can
// never satisfy, and grammar conflicts.
//
//	aarohivet -chains chains.json [-templates templates.json]
//
// Findings print one per line, most severe first. The exit code is 1 when
// any error-severity finding is present, 2 on usage or I/O problems, and 0
// otherwise (a clean model, or warnings only).
//
//	aarohivet -chains chains.json -templates templates.json -json
//
// emits the machine-readable report instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	aarohi "repro"
	"repro/internal/vet"
)

func main() {
	var (
		chainsPath = flag.String("chains", "", "failure chains JSON (required)")
		tplPath    = flag.String("templates", "", "template inventory JSON (optional; enables inventory and overlap checks)")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON")
		timeout    = flag.Duration("timeout", 0, "override the default per-gap reset timeout (0 = 4m default)")
		minLead    = flag.Duration("min-lead", 0, "warn when a chain's expected lead time is below this (0 disables)")
		checks     = flag.String("checks", "", "comma-separated subset of checks to run (default all)")
		noFactor   = flag.Bool("no-factoring", false, "analyze the unfactored one-production-per-chain grammar")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aarohivet -chains chains.json [-templates templates.json] [flags]\n\nchecks:\n%s\nflags:\n", vet.Doc())
		flag.PrintDefaults()
	}
	flag.Parse()
	if *chainsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	cf, err := os.Open(*chainsPath)
	if err != nil {
		fatalf("%v", err)
	}
	chains, err := aarohi.ReadChains(cf)
	cf.Close()
	if err != nil {
		fatalf("%v", err)
	}

	var templates []aarohi.Template
	if *tplPath != "" {
		tf, err := os.Open(*tplPath)
		if err != nil {
			fatalf("%v", err)
		}
		templates, err = aarohi.ReadTemplates(tf)
		tf.Close()
		if err != nil {
			fatalf("%v", err)
		}
	}

	cfg := vet.Config{
		Timeout:          *timeout,
		MinLead:          *minLead,
		DisableFactoring: *noFactor,
	}
	if *checks != "" {
		for _, c := range strings.Split(*checks, ",") {
			if c = strings.TrimSpace(c); c != "" {
				cfg.Checks = append(cfg.Checks, c)
			}
		}
	}

	rep, err := vet.Run(vet.Model{Chains: chains, Templates: templates}, cfg)
	if err != nil {
		fatalf("%v", err)
	}

	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if rep.Count(vet.Error) > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aarohivet: "+format+"\n", args...)
	os.Exit(2)
}
