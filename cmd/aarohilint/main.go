// Command aarohilint is the multichecker for aarohi's source invariants: the
// custom analyzers in internal/lint (hotpath, lockblock, mustclose, durable)
// run over the packages matching the given patterns and report findings in
// the familiar file:line:col form. Exit status 1 means findings, 2 means the
// tool itself failed. Stock correctness analyzers (nilness, shadow,
// unusedwrite, …) stay with `go vet`, which scripts/check.sh runs alongside
// this tool; aarohilint carries only the repo-specific invariants vet cannot
// know about.
//
// Usage:
//
//	aarohilint [-analyzers hotpath,durable] [-list] [-json] [packages]
//
// With no patterns, ./... is linted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		asJSON    = flag.Bool("json", false, "emit findings as JSON")
		dir       = flag.String("C", "", "change to dir before resolving patterns")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := lint.Select(*analyzers)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(*dir, flag.Args())
	if err != nil {
		fatal(err)
	}
	diags, err := lint.Run(pkgs, selected)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aarohilint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aarohilint:", err)
	os.Exit(2)
}
