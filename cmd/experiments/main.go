// Command experiments regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	experiments -all                # everything, in paper order
//	experiments -table6 -fig8       # selected experiments
//
// Timing experiments report this host's measurements; see DESIGN.md §4 for
// the documented substitutions (platform profiles, optimization knob).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

type runner struct {
	name string
	help string
	run  func() (string, error)
}

func main() {
	wrapStatic := func(f func() string) func() (string, error) {
		return func() (string, error) { return f(), nil }
	}
	wrapRows := func(f func() (string, error)) func() (string, error) { return f }

	runners := []runner{
		{"table1", "log variations across Cray generations", wrapStatic(experiments.Table1)},
		{"table2", "evaluation systems", wrapStatic(experiments.Table2)},
		{"table3", "log message processing walk-through", wrapStatic(experiments.Table3)},
		{"table4", "parser grammar derivation (Algorithm 1)", wrapStatic(experiments.Table4)},
		{"table5", "multiple rule matches", func() (string, error) {
			_, s, err := experiments.Table5()
			return s, err
		}},
		{"table6", "prediction times vs Desh/DeepLog/CloudSeer", func() (string, error) {
			_, s, err := experiments.Table6()
			return s, err
		}},
		{"table7", "efficiency formulae", wrapStatic(experiments.Table7)},
		{"table8", "comparative analysis", wrapStatic(experiments.Table8)},
		{"table9", "adaptability phrase inventories", wrapStatic(experiments.Table9)},
		{"fig5", "inter-arrival time CDFs", wrapRows(experiments.Fig5)},
		{"fig7", "Phase-1 efficiency per system", func() (string, error) {
			_, s, err := experiments.Fig7()
			return s, err
		}},
		{"fig8", "prediction time vs chain length (FC phrases)", func() (string, error) {
			_, s, err := experiments.Fig8()
			return s, err
		}},
		{"fig9", "prediction time with benign phrases", func() (string, error) {
			_, s, err := experiments.Fig9()
			return s, err
		}},
		{"fig10", "prediction time across platforms", wrapRows(experiments.Fig10)},
		{"fig11", "optimization on/off", wrapRows(experiments.Fig11)},
		{"fig12", "fraction of FC-related phrases", func() (string, error) {
			_, s, err := experiments.Fig12()
			return s, err
		}},
		{"fig13", "lead times for 10 failures", wrapRows(experiments.Fig13)},
		{"fig14", "lead times across systems", func() (string, error) {
			_, s, err := experiments.Fig14()
			return s, err
		}},
		{"fig15", "prediction times across systems", func() (string, error) {
			_, s, err := experiments.Fig15()
			return s, err
		}},
		{"ablations", "design-choice ablations (factoring, minimization, terminal, timeout)", wrapRows(experiments.Ablations)},
		{"ext1", "compute-waste saving: checkpointing vs prediction", wrapRows(experiments.Ext1MitigationBenefit)},
		{"ext2", "aggregate-stream throughput scaling", wrapRows(experiments.Ext2Throughput)},
		{"ext3", "dynamic rule update", wrapRows(experiments.Ext3DynamicUpdate)},
		{"ext4", "fully unsupervised pipeline (raw logs)", wrapRows(experiments.Ext4Unsupervised)},
		{"ext7", "fused arbitration vs chains-only alerting", wrapRows(experiments.Ext7FusedArbitration)},
		{"obs", "re-derive the paper's observations O1-O6", wrapRows(experiments.Observations)},
	}

	all := flag.Bool("all", false, "run every experiment in paper order")
	selected := map[string]*bool{}
	for _, r := range runners {
		selected[r.name] = flag.Bool(r.name, false, r.help)
	}
	flag.Parse()

	any := *all
	for _, v := range selected {
		any = any || *v
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	for _, r := range runners {
		if !*all && !*selected[r.name] {
			continue
		}
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.name, err)
			failed = true
			continue
		}
		fmt.Println(out)
	}
	if failed {
		os.Exit(1)
	}
}
