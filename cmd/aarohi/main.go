// Command aarohi runs the online node-failure predictor over a log stream.
//
// Usage:
//
//	aarohi -chains chains.json -templates templates.json [-in cluster.log]
//
// Predictions and observed failures print as they occur; with -stats, the
// scanner/parser counters (the Table V / Fig. 12 quantities) print at the
// end. When the stream contains the terminal failed messages, the achieved
// lead time is reported per failure.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	aarohi "repro"
)

func main() {
	var (
		chainsPath = flag.String("chains", "", "failure chains JSON (required)")
		tplPath    = flag.String("templates", "", "template inventory JSON (required)")
		inPath     = flag.String("in", "-", "log input path (- for stdin)")
		timeout    = flag.Duration("timeout", 0, "ΔT timeout override (default 4m)")
		noFactor   = flag.Bool("no-factoring", false, "disable subchain factoring (ablation)")
		stats      = flag.Bool("stats", true, "print aggregate counters at EOF")
		dumpRules  = flag.Bool("dump-rules", false, "print the generated grammar and LALR automaton report, then exit")
	)
	flag.Parse()
	if *chainsPath == "" || *tplPath == "" {
		fatalf("-chains and -templates are required")
	}

	chains := readChains(*chainsPath)
	inventory := readTemplates(*tplPath)

	if *dumpRules {
		rs, err := aarohi.TranslateFCs(chains, aarohi.TranslateOptions{DisableFactoring: *noFactor})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println("Derived rules (Algorithm 1):")
		fmt.Println(rs.DumpRules())
		fmt.Println(rs.Tables.Report())
		return
	}

	p, err := aarohi.New(chains, inventory, aarohi.Options{
		Timeout: *timeout, DisableFactoring: *noFactor,
	})
	if err != nil {
		fatalf("%v", err)
	}

	var in io.Reader = os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}

	// Track open predictions to report lead times when failures arrive.
	lastPrediction := map[string]*aarohi.Prediction{}
	predictions, failures := 0, 0

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		out, err := p.ProcessLine(sc.Text())
		if err != nil {
			fmt.Fprintf(os.Stderr, "aarohi: line %d: %v\n", lineNo, err)
			continue
		}
		if pr := out.Prediction; pr != nil {
			predictions++
			fmt.Printf("PREDICTION %s node=%s chain=%s length=%d\n",
				pr.MatchedAt.Format(time.RFC3339Nano), pr.Node, pr.ChainName, pr.Length)
			lastPrediction[pr.Node] = pr
		}
		if f := out.Failure; f != nil {
			failures++
			if pr, ok := lastPrediction[f.Node]; ok && !pr.MatchedAt.After(f.Time) {
				fmt.Printf("FAILURE    %s node=%s lead=%s (predicted by %s)\n",
					f.Time.Format(time.RFC3339Nano), f.Node,
					f.Time.Sub(pr.MatchedAt).Round(time.Millisecond), pr.ChainName)
				delete(lastPrediction, f.Node)
			} else {
				fmt.Printf("FAILURE    %s node=%s UNPREDICTED\n",
					f.Time.Format(time.RFC3339Nano), f.Node)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("reading log: %v", err)
	}

	if *stats {
		st := p.Stats()
		fmt.Printf("\n--- stats ---\n")
		fmt.Printf("lines scanned:       %d\n", st.LinesScanned)
		fmt.Printf("tokens (FC-related): %d (%.2f%%)\n", st.Tokens, 100*st.FCRelatedFraction())
		fmt.Printf("discarded:           %d\n", st.Discarded)
		fmt.Printf("per-node drivers:    %d\n", st.Nodes)
		fmt.Printf("consumed/skipped:    %d/%d (interleaved %d)\n",
			st.Parser.Consumed, st.Parser.Skipped, st.Parser.Interleaved)
		fmt.Printf("timeout resets:      %d\n", st.Parser.TimeoutResets)
		fmt.Printf("predictions:         %d\n", predictions)
		fmt.Printf("observed failures:   %d\n", failures)
	}
}

func readChains(path string) []aarohi.FailureChain {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	chains, err := aarohi.ReadChains(f)
	if err != nil {
		fatalf("%v", err)
	}
	return chains
}

func readTemplates(path string) []aarohi.Template {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	ts, err := aarohi.ReadTemplates(f)
	if err != nil {
		fatalf("%v", err)
	}
	return ts
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aarohi: "+format+"\n", args...)
	os.Exit(1)
}
