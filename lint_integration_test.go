package aarohi_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestAarohilintCLI builds the aarohilint binary and proves the contract the
// CI gate depends on: a module with a seeded hot-path violation must exit 1
// naming the violation, a clean module must exit 0, and the repository
// itself must lint clean (the invariant this PR establishes).
func TestAarohilintCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "aarohilint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/aarohilint")
	cmd.Env = os.Environ()
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building aarohilint: %v\n%s", err, msg)
	}

	runLint := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		code := 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("aarohilint %v: %v\n%s", args, err, out)
			}
			code = ee.ExitCode()
		}
		return string(out), code
	}

	// A scratch module with one seeded violation and one clean package.
	mod := filepath.Join(dir, "seeded")
	writeFile(t, filepath.Join(mod, "go.mod"), "module seeded\n\ngo 1.22\n")
	writeFile(t, filepath.Join(mod, "dirty", "dirty.go"), `package dirty

//aarohi:hotpath
func copies(b []byte) string {
	return string(b)
}
`)
	writeFile(t, filepath.Join(mod, "clean", "clean.go"), `package clean

//aarohi:hotpath
func sums(b []byte) int {
	n := 0
	for i := 0; i < len(b); i++ {
		n += int(b[i])
	}
	return n
}
`)

	t.Run("seeded violation fails", func(t *testing.T) {
		out, code := runLint("-C", mod, "./dirty")
		if code != 1 {
			t.Fatalf("exit %d over seeded violation, want 1\n%s", code, out)
		}
		if !strings.Contains(out, "converts []byte to string") || !strings.Contains(out, "(hotpath)") {
			t.Fatalf("diagnostic missing from output:\n%s", out)
		}
	})

	t.Run("clean package passes", func(t *testing.T) {
		out, code := runLint("-C", mod, "./clean")
		if code != 0 {
			t.Fatalf("exit %d over clean package, want 0\n%s", code, out)
		}
	})

	t.Run("allow directive suppresses", func(t *testing.T) {
		writeFile(t, filepath.Join(mod, "waived", "waived.go"), `package waived

//aarohi:hotpath
func copies(b []byte) string {
	return string(b) //aarohi:allow hotpath caller requires an owned copy
}
`)
		out, code := runLint("-C", mod, "./waived")
		if code != 0 {
			t.Fatalf("exit %d with allow directive, want 0\n%s", code, out)
		}
	})

	t.Run("repository lints clean", func(t *testing.T) {
		out, code := runLint("./...")
		if code != 0 {
			t.Fatalf("aarohilint ./... exit %d; the repo must stay lint-clean\n%s", code, out)
		}
	})

	t.Run("json findings", func(t *testing.T) {
		out, code := runLint("-C", mod, "-json", "./dirty")
		if code != 1 {
			t.Fatalf("exit %d, want 1\n%s", code, out)
		}
		if !strings.Contains(out, `"analyzer": "hotpath"`) {
			t.Fatalf("JSON output missing analyzer field:\n%s", out)
		}
	})
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
