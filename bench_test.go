// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark exercises the measured quantity of its table/figure; the
// experiment harness (cmd/experiments) prints the corresponding rows.
package aarohi_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	aarohi "repro"
	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/loggen"
	"repro/internal/predictor"
	"repro/internal/serve"
	"repro/internal/trainer"
)

// --- Table III: tokenize-and-parse one chain message at a time -----------

func BenchmarkTable3MessageProcessing(b *testing.B) {
	d := loggen.DialectXC30
	fc := d.Chains()[0]
	p, err := aarohi.New(d.Chains(), d.Inventory(), aarohi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lines := experiments.ChainLines(d, fc, "c0-0c2s0n2", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ProcessLine(lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table IV: Algorithm 1 translation + LALR table generation -----------

func BenchmarkTable4TranslateFCs(b *testing.B) {
	chains := loggen.DialectXC30.Chains()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := aarohi.TranslateFCs(chains, aarohi.TranslateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table V: full test-log evaluation per system -------------------------

func BenchmarkTable5Evaluate(b *testing.B) {
	for _, s := range experiments.Systems {
		b.Run(s.Name, func(b *testing.B) {
			log, err := s.GenerateTest()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Evaluate(log, s.Dialect.Chains(), predictor.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table VI: per-chain check, Aarohi vs. the three baselines ------------

func table6Stream(b *testing.B, length int) ([]string, aarohi.FailureChain) {
	b.Helper()
	d := loggen.DialectXC30
	fc := experiments.SyntheticChain(d, fmt.Sprintf("T6-%d", length), length)
	lines := experiments.ChainLines(d, fc, "c0-0c2s0n2", int64(length))
	return lines, fc
}

func BenchmarkTable6Aarohi(b *testing.B) {
	for _, length := range experiments.Table6Lengths {
		b.Run(fmt.Sprintf("len%d", length), func(b *testing.B) {
			lines, fc := table6Stream(b, length)
			p, err := aarohi.New([]aarohi.FailureChain{fc}, loggen.DialectXC30.Inventory(), aarohi.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Reset()
				for _, line := range lines {
					if _, err := p.ProcessLine(line); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkTable6Desh(b *testing.B) {
	benchBaselineTable6(b, func(fc aarohi.FailureChain) *baselines.Frontend {
		inv := loggen.DialectXC30.Inventory()
		return baselines.NewFrontend(baselines.NewDesh(inv, []aarohi.FailureChain{fc}, 1), inv, true)
	})
}

func BenchmarkTable6DeepLog(b *testing.B) {
	benchBaselineTable6(b, func(fc aarohi.FailureChain) *baselines.Frontend {
		inv := loggen.DialectXC30.Inventory()
		return baselines.NewFrontend(baselines.NewDeepLog(inv, []aarohi.FailureChain{fc}, 1), inv, true)
	})
}

func BenchmarkTable6CloudSeer(b *testing.B) {
	benchBaselineTable6(b, func(fc aarohi.FailureChain) *baselines.Frontend {
		inv := loggen.DialectXC30.Inventory()
		return baselines.NewFrontend(baselines.NewCloudSeer(inv, []aarohi.FailureChain{fc}), inv, false)
	})
}

func benchBaselineTable6(b *testing.B, mk func(aarohi.FailureChain) *baselines.Frontend) {
	for _, length := range experiments.Table6Lengths {
		b.Run(fmt.Sprintf("len%d", length), func(b *testing.B) {
			lines, fc := table6Stream(b, length)
			fe := mk(fc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fe.Reset()
				for _, line := range lines {
					if _, err := fe.ProcessLine(line); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Fig. 5: inter-arrival generation and CDF ------------------------------

func BenchmarkFig5ArrivalAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 7: the full two-phase pipeline (train + predict) ----------------

func BenchmarkFig7Phase1Mining(b *testing.B) {
	s := experiments.Systems[0]
	log, err := s.GenerateTraining()
	if err != nil {
		b.Fatal(err)
	}
	toks := log.Tokens()
	inv := s.Dialect.Inventory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainer.Train(toks, inv, trainer.Config{MinSupport: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 8/9: prediction time vs. chain length ---------------------------

func BenchmarkFig8ChainOnly(b *testing.B)  { benchFigStream(b, false) }
func BenchmarkFig9WithBenign(b *testing.B) { benchFigStream(b, true) }

func benchFigStream(b *testing.B, mixed bool) {
	d := loggen.DialectXC30
	for _, length := range []int{5, 18, 50} {
		b.Run(fmt.Sprintf("len%d", length), func(b *testing.B) {
			var lines []string
			var fc aarohi.FailureChain
			if mixed {
				fc = experiments.SyntheticChain(d, "F", (length+1)/2)
				lines = experiments.MixedLines(d, fc, "n1", length, int64(length))
			} else {
				fc = experiments.SyntheticChain(d, "F", length)
				lines = experiments.ChainLines(d, fc, "n1", int64(length))
			}
			p, err := aarohi.New([]aarohi.FailureChain{fc}, d.Inventory(), aarohi.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Reset()
				for _, line := range lines {
					if _, err := p.ProcessLine(line); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Fig. 10/11: long streams ---------------------------------------------

func BenchmarkFig10LongStreams(b *testing.B) {
	d := loggen.DialectXC30
	for _, length := range experiments.Fig10Lengths {
		b.Run(fmt.Sprintf("len%d", length), func(b *testing.B) {
			fc := experiments.SyntheticChain(d, "F10", length)
			lines := experiments.ChainLines(d, fc, "n1", int64(length))
			p, err := aarohi.New([]aarohi.FailureChain{fc}, d.Inventory(), aarohi.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Reset()
				for _, line := range lines {
					if _, err := p.ProcessLine(line); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkFig11Stream7443(b *testing.B) {
	d := loggen.DialectXC30
	fc := experiments.SyntheticChain(d, "F11", 60)
	lines := experiments.MixedLines(d, fc, "n1", 7443, 7)
	p, err := aarohi.New([]aarohi.FailureChain{fc}, d.Inventory(), aarohi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		for _, line := range lines {
			if _, err := p.ProcessLine(line); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Fig. 12: scanner filter fraction --------------------------------------

func BenchmarkFig12ScanFilter(b *testing.B) {
	s := experiments.Systems[0]
	log, err := s.GenerateTest()
	if err != nil {
		b.Fatal(err)
	}
	p, err := aarohi.New(s.Dialect.Chains(), s.Dialect.Inventory(), aarohi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lines := log.Lines()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ProcessLine(lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 13/14: lead-time evaluation ---------------------------------------

func BenchmarkFig13LeadTimes(b *testing.B) {
	s := experiments.Systems[0]
	log, err := s.GenerateTest()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := cluster.Evaluate(log, s.Dialect.Chains(), predictor.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.LeadTimes.N() == 0 {
			b.Fatal("no lead times")
		}
	}
}

// --- Fig. 15: per-failed-node stream prediction time -----------------------

func BenchmarkFig15NodeStream(b *testing.B) {
	s := experiments.Systems[0]
	log, err := s.GenerateTest()
	if err != nil {
		b.Fatal(err)
	}
	p, err := aarohi.New(s.Dialect.Chains(), s.Dialect.Inventory(), aarohi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	node := log.FailedNodes()[0]
	events := log.NodeEvents(node)
	lines := make([]string, len(events))
	for i, e := range events {
		lines[i] = e.Line()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		for _, line := range lines {
			if _, err := p.ProcessLine(line); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- serving: loopback TCP ingest throughput of the aarohid core ------------

// BenchmarkServeIngest measures the full daemon ingest path — TCP line
// protocol → bounded queue → sharded Manager — over loopback, per overflow
// policy. One iteration streams the whole generated log and drains.
func BenchmarkServeIngest(b *testing.B) {
	log, err := loggen.Generate(loggen.Config{
		Dialect: loggen.DialectXC30, Seed: 4, Duration: 2 * time.Hour,
		Nodes: 32, Failures: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	lines := log.Lines()
	var bytes int64
	for _, line := range lines {
		bytes += int64(len(line)) + 1
	}
	iter := func(b *testing.B, cfg aarohi.ServeConfig) {
		b.Helper()
		mgr, err := aarohi.NewManager(log.Dialect.Chains(), log.Dialect.Inventory(), aarohi.Options{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		srv := aarohi.NewServer(mgr, cfg)
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		conn, err := serve.DialLines(srv.TCPAddr().String())
		if err != nil {
			b.Fatal(err)
		}
		for _, line := range lines {
			if err := conn.Send(line); err != nil {
				b.Fatal(err)
			}
		}
		if err := conn.Close(); err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		if err := srv.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
		cancel()
		st := srv.Status()
		if st.LinesAccepted+st.LinesDropped != int64(len(lines)) {
			b.Fatalf("accepted %d + dropped %d != sent %d",
				st.LinesAccepted, st.LinesDropped, len(lines))
		}
	}
	for _, policy := range []aarohi.OverflowPolicy{aarohi.OverflowBlock, aarohi.OverflowShed} {
		b.Run(string(policy), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				iter(b, aarohi.ServeConfig{
					HTTPAddr: "off", Overflow: policy, QueueSize: 4096,
				})
			}
		})
	}
	// Durability cost: same path with the write-ahead journal on, per fsync
	// policy (EXPERIMENTS.md "durability cost" row). Each iteration gets a
	// fresh data dir so recovery replay never pollutes the measurement.
	for _, sync := range []aarohi.SyncPolicy{aarohi.SyncOff, aarohi.SyncBatch, aarohi.SyncAlways} {
		b.Run("wal-fsync="+sync.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				iter(b, aarohi.ServeConfig{
					HTTPAddr: "off", Overflow: aarohi.OverflowBlock, QueueSize: 4096,
					DataDir: filepath.Join(b.TempDir(), fmt.Sprint(i)), Fsync: sync,
				})
			}
		})
	}
}

// --- headline: 18-length chain, the paper's 0.31 ms configuration ----------

func BenchmarkHeadlineChain18(b *testing.B) {
	d := loggen.DialectXC30
	fc := experiments.SyntheticChain(d, "FC18", 18)
	lines := experiments.ChainLines(d, fc, "c0-0c2s0n2", 18)
	p, err := aarohi.New([]aarohi.FailureChain{fc}, d.Inventory(), aarohi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	iters := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		for _, line := range lines {
			if _, err := p.ProcessLine(line); err != nil {
				b.Fatal(err)
			}
		}
		iters++
	}
	b.StopTimer()
	if iters > 0 {
		perChain := time.Since(start) / time.Duration(iters)
		b.ReportMetric(float64(perChain.Microseconds())/1000.0, "ms/chain")
	}
}
