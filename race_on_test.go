//go:build race

package aarohi_test

// raceEnabled mirrors the -race build flag so subprocess-spawning tests can
// build their binaries with the same instrumentation.
const raceEnabled = true
