package aarohi_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestAarohivetCLI builds the aarohivet binary and runs it over the bundled
// example rulesets: the clean quickstart model must exit 0 with no findings;
// the seeded-defect model must exit 1 and report every seeded defect class,
// in both the human and the JSON rendering.
func TestAarohivetCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "aarohivet")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/aarohivet")
	cmd.Env = os.Environ()
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building aarohivet: %v\n%s", err, msg)
	}

	runVet := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		code := 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("aarohivet %v: %v\n%s", args, err, out)
			}
			code = ee.ExitCode()
		}
		return string(out), code
	}

	// Clean model: exit 0, zero findings.
	out, code := runVet("-chains", "examples/vet/chains.json",
		"-templates", "examples/vet/templates.json")
	if code != 0 {
		t.Errorf("clean model: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "0 error(s), 0 warning(s)") {
		t.Errorf("clean model output missing zero summary:\n%s", out)
	}

	// Bad model: exit 1, with every seeded defect class reported.
	out, code = runVet("-chains", "examples/vet/bad-chains.json",
		"-templates", "examples/vet/bad-templates.json")
	if code != 1 {
		t.Errorf("bad model: exit %d, want 1\n%s", code, out)
	}
	for _, frag := range []string{
		"error: [chains] FC-long",      // prefix shadow
		"error: [deltat] FC-gap",       // unsatisfiable ΔT budget
		"error: [inventory] FC-orphan", // phrase missing from inventory
		"error: [overlap] template 2",  // covered template
		"warning: [grammar]",           // LALR conflict from factoring
		"dead template",                // unused inventory template
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("bad model output missing %q:\n%s", frag, out)
		}
	}

	// JSON rendering: decodable, counts consistent, subjects non-empty.
	out, code = runVet("-chains", "examples/vet/bad-chains.json",
		"-templates", "examples/vet/bad-templates.json", "-json")
	if code != 1 {
		t.Errorf("bad model -json: exit %d, want 1", code)
	}
	var rep struct {
		Findings []struct {
			Check    string   `json:"check"`
			Severity string   `json:"severity"`
			Subject  string   `json:"subject"`
			Message  string   `json:"message"`
			Related  []string `json:"related"`
		} `json:"findings"`
		Errors   int `json:"errors"`
		Warnings int `json:"warnings"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON report: %v\n%s", err, out)
	}
	if rep.Errors == 0 || len(rep.Findings) == 0 {
		t.Fatalf("JSON report empty: %s", out)
	}
	errs := 0
	for _, f := range rep.Findings {
		if f.Subject == "" || f.Message == "" || f.Check == "" {
			t.Errorf("finding with empty field: %+v", f)
		}
		if f.Severity == "error" {
			errs++
		}
	}
	if errs != rep.Errors {
		t.Errorf("errors count %d != error findings %d", rep.Errors, errs)
	}

	// Check filtering: restricting to deltat hides the chains error.
	out, code = runVet("-chains", "examples/vet/bad-chains.json",
		"-templates", "examples/vet/bad-templates.json", "-checks", "deltat")
	if code != 1 {
		t.Errorf("-checks deltat: exit %d, want 1 (FC-gap error remains)", code)
	}
	if strings.Contains(out, "[chains]") {
		t.Errorf("-checks deltat still ran the chains check:\n%s", out)
	}

	// Usage errors exit 2.
	if _, code = runVet(); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if _, code = runVet("-chains", filepath.Join(dir, "missing.json")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}
