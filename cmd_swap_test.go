package aarohi_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"testing"
)

// buildTestCmd compiles ./cmd/<name> into dir, reusing the go build cache so
// repeated builds across tests are cheap.
func buildTestCmd(t *testing.T, dir, name string, extra ...string) string {
	t.Helper()
	out := filepath.Join(dir, name)
	args := append([]string{"build"}, extra...)
	args = append(args, "-o", out, "./cmd/"+name)
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, msg)
	}
	return out
}

// genSwapCorpus runs loggen for a labeled corpus plus the model files and
// returns the log lines.
func genSwapCorpus(t *testing.T, loggenBin, dir string, seed int) (lines []string, chains, templates string) {
	t.Helper()
	templates = filepath.Join(dir, "templates.json")
	chains = filepath.Join(dir, "chains.json")
	refLog := filepath.Join(dir, "ref.log")
	run(t, loggenBin, "-dialect", "xc30", "-nodes", "8", "-duration", "2h",
		"-failures", "5", "-seed", fmt.Sprint(seed), "-out", refLog,
		"-templates", templates, "-chains", chains)
	raw, err := os.ReadFile(refLog)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(string(raw), "\n"), "\n"), chains, templates
}

// variantUploadBody assembles a POST /model document from the exported model
// files with the ΔT default (4m) spelled out explicitly: a distinct model
// fingerprint over the same parse automaton, so hot-swapping to it migrates
// every in-flight parse and changes nothing about prediction behavior.
func variantUploadBody(t *testing.T, chainsPath, tplPath string, activate, shadow bool) []byte {
	t.Helper()
	chainsRaw, err := os.ReadFile(chainsPath)
	if err != nil {
		t.Fatal(err)
	}
	tplRaw, err := os.ReadFile(tplPath)
	if err != nil {
		t.Fatal(err)
	}
	doc := fmt.Sprintf(`{"chains":%s,"templates":%s,"options":{"Timeout":%d},"activate":%v,"shadow":%v}`,
		chainsRaw, tplRaw, int64(4*time.Minute), activate, shadow)
	return []byte(doc)
}

// postJSONStatus POSTs body and returns the status code and response bytes.
func postJSONStatus(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// uploadResult mirrors the POST /model and /model/rollback response fields
// the harness checks.
type uploadResult struct {
	Model struct {
		Fingerprint      string `json:"fingerprint"`
		RulesFingerprint string `json:"rules_fingerprint"`
	} `json:"model"`
	Swap *struct {
		From         string  `json:"from"`
		To           string  `json:"to"`
		Trigger      string  `json:"trigger"`
		StateCarried bool    `json:"state_carried"`
		PauseSeconds float64 `json:"pause_seconds"`
	} `json:"swap"`
}

// attributedPred is one prediction with its model attribution.
type attributedPred struct {
	key   string
	model string
}

// collectAttributed drains /predictions and returns every prediction with
// the model fingerprint that produced it, preserving delivery order.
func collectAttributed(t *testing.T, httpAddr string) func() []attributedPred {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/predictions?replay=recovered")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("/predictions status %d", resp.StatusCode)
	}
	done := make(chan []attributedPred, 1)
	orderErr := make(chan error, 1)
	go func() {
		defer resp.Body.Close()
		var preds []attributedPred
		lastMatched := map[string]time.Time{}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			if len(bytes.TrimSpace(sc.Bytes())) == 0 {
				continue
			}
			var out struct {
				Prediction *struct {
					Node      string
					ChainName string
					FirstAt   time.Time
					MatchedAt time.Time
					Length    int
				}
				Model string `json:"model"`
			}
			if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
				break
			}
			if p := out.Prediction; p != nil {
				if prev, ok := lastMatched[p.Node]; ok && p.MatchedAt.Before(prev) {
					select {
					case orderErr <- fmt.Errorf("node %s: prediction at %v delivered after %v (reordered across swap)",
						p.Node, p.MatchedAt, prev):
					default:
					}
				}
				lastMatched[p.Node] = p.MatchedAt
				preds = append(preds, attributedPred{
					key: fmt.Sprintf("%s/%s/%d/%d/%d",
						p.Node, p.ChainName, p.FirstAt.UnixNano(), p.MatchedAt.UnixNano(), p.Length),
					model: out.Model,
				})
			}
		}
		done <- preds
	}()
	return func() []attributedPred {
		preds := <-done
		select {
		case err := <-orderErr:
			t.Error(err)
		default:
		}
		return preds
	}
}

// finalStats parses the daemon's post-drain stats report from stdout.
func finalStats(t *testing.T, d *daemonProc) daemonStatus {
	t.Helper()
	out := d.stdout.String()
	_, jsonPart, ok := strings.Cut(out, "--- final stats ---")
	if !ok {
		t.Fatalf("no final stats in daemon stdout:\n%s", out)
	}
	var st daemonStatus
	if err := json.Unmarshal([]byte(jsonPart), &st); err != nil {
		t.Fatalf("decoding final stats: %v\n%s", err, jsonPart)
	}
	return st
}

// TestAarohidModelSwapE2E exercises the model lifecycle against the real
// daemon binary: a variant model is POSTed and activated mid-stream under
// load, and the run must lose no accepted line, attribute post-swap
// predictions to the new fingerprint, and produce exactly the prediction set
// of an uninterrupted single-model run; a rollback then restores the boot
// model as the active version.
func TestAarohidModelSwapE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries, streams corpora")
	}
	dir := t.TempDir()
	loggenBin := buildTestCmd(t, dir, "loggen")
	aarohidBin := buildTestCmd(t, dir, "aarohid", testBuildRaceFlag()...)
	lines, chains, templates := genSwapCorpus(t, loggenBin, dir, 99)
	t.Logf("corpus: %d lines", len(lines))

	modelArgs := []string{"-chains", chains, "-templates", templates,
		"-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0", "-grace", "30s"}

	// Uninterrupted reference run: one model for the whole corpus.
	var refKeys []string
	{
		d := startAarohid(t, aarohidBin, modelArgs...)
		col := subscribePredictions(t, d.httpAddr)
		streamLines(t, d.tcpAddr, lines)
		d.sigterm(t)
		refKeys = col.wait()
		if len(refKeys) == 0 {
			t.Fatal("reference run produced no predictions")
		}
		sort.Strings(refKeys)
	}

	d := startAarohid(t, aarohidBin, modelArgs...)
	st := statusz(t, d.httpAddr)
	if st.Model == nil || len(st.Model.Active) != 16 {
		t.Fatalf("statusz model block = %+v, want an active fingerprint", st.Model)
	}
	fpA := st.Model.Active

	collect := collectAttributed(t, d.httpAddr)
	half := len(lines) / 2
	streamLines(t, d.tcpAddr, lines[:half])

	// Hot-swap mid-stream: upload + activate the variant model.
	code, body := postJSONStatus(t, "http://"+d.httpAddr+"/model",
		variantUploadBody(t, chains, templates, true, false))
	if code != http.StatusCreated {
		t.Fatalf("POST /model: status %d: %s", code, body)
	}
	var up uploadResult
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatalf("decoding upload result: %v\n%s", err, body)
	}
	fpB := up.Model.Fingerprint
	if fpB == fpA || len(fpB) != 16 {
		t.Fatalf("variant fingerprint %q not distinct from boot model %q", fpB, fpA)
	}
	if up.Swap == nil || !up.Swap.StateCarried || up.Swap.From != fpA || up.Swap.To != fpB {
		t.Fatalf("upload swap report %+v, want state-carried %s -> %s", up.Swap, fpA, fpB)
	}
	t.Logf("hot-swap %s -> %s paused ingest %.6fs", fpA, fpB, up.Swap.PauseSeconds)

	streamLines(t, d.tcpAddr, lines[half:])

	// Roll back: the boot model must become active again. No further lines
	// are streamed, so attribution stays monotonic A then B.
	code, body = postJSONStatus(t, "http://"+d.httpAddr+"/model/rollback", nil)
	if code != http.StatusOK {
		t.Fatalf("POST /model/rollback: status %d: %s", code, body)
	}
	var rb struct {
		To      string `json:"to"`
		Trigger string `json:"trigger"`
	}
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if rb.To != fpA || rb.Trigger != "rollback" {
		t.Fatalf("rollback swap report %+v, want rollback to %s", rb, fpA)
	}
	if st := statusz(t, d.httpAddr); st.Model == nil || st.Model.Active != fpA {
		t.Fatalf("after rollback active = %+v, want %s", st.Model, fpA)
	}

	d.sigterm(t)
	preds := collect()

	// Zero accepted-line loss across both swaps, by the daemon's own books.
	fin := finalStats(t, d)
	if fin.LinesAccepted != int64(len(lines)) || fin.Manager.LinesScanned != len(lines) {
		t.Errorf("accepted=%d scanned=%d, want %d of both (lines lost across swap)",
			fin.LinesAccepted, fin.Manager.LinesScanned, len(lines))
	}
	if fin.Model == nil || fin.Model.Active != fpA || fin.Model.Swaps != 2 || fin.Model.Versions != 2 {
		t.Errorf("final model status %+v, want active=%s swaps=2 versions=2", fin.Model, fpA)
	}

	// The swapped run predicts exactly what the uninterrupted run did, and
	// attribution is monotonic: once the swap lands no prediction names the
	// old model.
	keys := make([]string, 0, len(preds))
	seenB := false
	for _, p := range preds {
		keys = append(keys, p.key)
		switch p.model {
		case fpB:
			seenB = true
		case fpA:
			if seenB {
				t.Errorf("prediction %s attributed to %s after the swap to %s", p.key, fpA, fpB)
			}
		default:
			t.Errorf("prediction %s attributed to unknown model %q", p.key, p.model)
		}
	}
	sort.Strings(keys)
	if strings.Join(keys, "\n") != strings.Join(refKeys, "\n") {
		t.Fatalf("swapped run predictions diverge from reference:\n got %d: %v\nwant %d: %v",
			len(keys), keys, len(refKeys), refKeys)
	}
}

// TestAarohidCrashDuringSwap extends the kill-and-restart harness with model
// hot-swaps racing the kills: activations alternate between two behaviorally
// identical models while the corpus streams and SIGKILL lands at random
// offsets. After every crash the daemon must boot with one of the two models
// active, replay the journal (epoch records included) cleanly, and the union
// of predictions must still exactly match an uninterrupted run's.
func TestAarohidCrashDuringSwap(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries, kills processes")
	}
	dir := t.TempDir()
	loggenBin := buildTestCmd(t, dir, "loggen")
	aarohidBin := buildTestCmd(t, dir, "aarohid", testBuildRaceFlag()...)
	lines, chains, templates := genSwapCorpus(t, loggenBin, dir, 55)
	t.Logf("corpus: %d lines", len(lines))

	modelArgs := []string{"-chains", chains, "-templates", templates,
		"-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0", "-grace", "30s"}

	var refKeys []string
	{
		d := startAarohid(t, aarohidBin, modelArgs...)
		col := subscribePredictions(t, d.httpAddr)
		streamLines(t, d.tcpAddr, lines)
		d.sigterm(t)
		refKeys = col.wait()
		if len(refKeys) == 0 {
			t.Fatal("reference run produced no predictions")
		}
		sort.Strings(refKeys)
	}

	dataDir := filepath.Join(dir, "data")
	durArgs := append([]string{"-data-dir", dataDir, "-fsync", "always", "-snapshot-interval", "0"}, modelArgs...)
	rng := rand.New(rand.NewSource(13))
	union := map[string]bool{}
	pos := 0
	var fpA, fpB string
	const kills = 8
	for iter := 0; iter < kills; iter++ {
		d := startAarohid(t, aarohidBin, durArgs...)
		st := statusz(t, d.httpAddr)
		if st.Model == nil {
			t.Fatalf("iteration %d: no model block in statusz", iter)
		}
		if iter == 0 {
			fpA = st.Model.Active
			// Admit the variant once; the registry persists it across crashes.
			code, body := postJSONStatus(t, "http://"+d.httpAddr+"/model",
				variantUploadBody(t, chains, templates, false, false))
			if code != http.StatusCreated {
				t.Fatalf("POST /model: status %d: %s", code, body)
			}
			var up uploadResult
			if err := json.Unmarshal(body, &up); err != nil {
				t.Fatal(err)
			}
			fpB = up.Model.Fingerprint
		} else {
			if st.Model.Active != fpA && st.Model.Active != fpB {
				t.Fatalf("iteration %d: recovered active model %s, want %s or %s",
					iter, st.Model.Active, fpA, fpB)
			}
			if st.Model.Versions != 2 {
				t.Fatalf("iteration %d: registry has %d versions, want 2", iter, st.Model.Versions)
			}
			// A kill can land while a swap holds the ingest pause with the
			// journal still empty — then there is legitimately nothing to
			// recover. Any durable record, though, must force a replay.
			if st.Recovery == nil {
				t.Fatalf("iteration %d: no recovery block after kill", iter)
			}
			if st.WAL == nil {
				t.Fatalf("iteration %d: no wal block in statusz", iter)
			}
			if !st.Recovery.Performed && st.WAL.LastIndex > 0 {
				t.Fatalf("iteration %d: journal holds %d records but boot performed no recovery",
					iter, st.WAL.LastIndex)
			}
		}
		// The journal holds epoch records too, so the durable line count is
		// the manager's replayed total, not the WAL index.
		durable := st.Manager.LinesScanned
		if durable > pos {
			t.Fatalf("iteration %d: recovered %d lines but only %d were ever sent", iter, durable, pos)
		}
		pos = durable

		col := subscribePredictions(t, d.httpAddr)
		remaining := len(lines) - pos
		chunk := 0
		if remaining > kills-iter {
			chunk = min(1+rng.Intn(remaining/(kills-iter)+1), remaining)
		}
		swapsDone := make(chan struct{})
		go func() {
			defer close(swapsDone)
			cl := &http.Client{Timeout: 2 * time.Second}
			targets := []string{fpB, fpA, fpB}
			for _, fp := range targets {
				// Races the kill by design: errors and refused swaps are fine,
				// the journal decides which activations became durable.
				body := fmt.Sprintf(`{"fingerprint":%q}`, fp)
				resp, err := cl.Post("http://"+d.httpAddr+"/model/activate", "application/json",
					strings.NewReader(body))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
			}
		}()
		if chunk > 0 {
			streamLines(t, d.tcpAddr, lines[pos:pos+chunk])
			pos += chunk
		}
		time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
		d.sigkill(t)
		<-swapsDone
		for _, k := range col.wait() {
			union[k] = true
		}
	}

	// Final graceful run: resume from the durable offset, stream the tail,
	// drain (writing the snapshot under whichever model ended up active).
	d := startAarohid(t, aarohidBin, durArgs...)
	st := statusz(t, d.httpAddr)
	if st.Manager.LinesScanned > pos {
		t.Fatalf("final boot recovered %d lines, only %d sent", st.Manager.LinesScanned, pos)
	}
	pos = st.Manager.LinesScanned
	col := subscribePredictions(t, d.httpAddr)
	streamLines(t, d.tcpAddr, lines[pos:])
	d.sigterm(t)
	for _, k := range col.wait() {
		union[k] = true
	}
	fin := finalStats(t, d)
	if fin.Model == nil {
		t.Fatal("final stats carry no model block")
	}
	activeAtDrain := fin.Model.Active

	got := make([]string, 0, len(union))
	for k := range union {
		got = append(got, k)
	}
	sort.Strings(got)
	if strings.Join(got, "\n") != strings.Join(refKeys, "\n") {
		t.Fatalf("union of predictions across %d crash+swap runs diverges:\n got %d: %v\nwant %d: %v",
			kills, len(got), got, len(refKeys), refKeys)
	}

	// Post-drain boot: recovery must come from the snapshot — which was taken
	// under activeAtDrain, not necessarily the boot flags' model — with zero
	// replayed records, and the daemon must keep that model active.
	d = startAarohid(t, aarohidBin, durArgs...)
	st = statusz(t, d.httpAddr)
	if st.Recovery == nil || !st.Recovery.Performed || st.Recovery.ReplayedRecords != 0 {
		t.Errorf("post-drain boot recovery = %+v, want snapshot-only", st.Recovery)
	}
	if st.Model == nil || st.Model.Active != activeAtDrain {
		t.Errorf("post-drain boot active model %+v, want %s", st.Model, activeAtDrain)
	}
	if st.Manager.LinesScanned != len(lines) {
		t.Errorf("post-drain boot scanned %d lines, want %d", st.Manager.LinesScanned, len(lines))
	}
	d.sigterm(t)
}

// TestAarohidReloadSighupAndWatch drives the file-based reload paths: a
// SIGHUP with unchanged model files is a no-op (content-addressed admission
// finds the version already stored), and rewriting the chains file under
// -watch hot-swaps to the new model without a restart.
func TestAarohidReloadSighupAndWatch(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	loggenBin := buildTestCmd(t, dir, "loggen")
	aarohidBin := buildTestCmd(t, dir, "aarohid", testBuildRaceFlag()...)
	_, chains, templates := genSwapCorpus(t, loggenBin, dir, 7)

	// The daemon watches a private copy so the test can rewrite it.
	liveChains := filepath.Join(dir, "live-chains.json")
	raw, err := os.ReadFile(chains)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(liveChains, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d := startAarohid(t, aarohidBin, "-chains", liveChains, "-templates", templates,
		"-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0", "-grace", "30s", "-watch", "100ms")
	st := statusz(t, d.httpAddr)
	if st.Model == nil {
		t.Fatal("no model block in statusz")
	}
	fpA := st.Model.Active

	// SIGHUP with unchanged files: same fingerprint, nothing swaps.
	if err := d.cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	st = statusz(t, d.httpAddr)
	if st.Model.Active != fpA || st.Model.Versions != 1 || st.Model.Swaps != 0 {
		t.Fatalf("no-op SIGHUP changed model state: %+v", st.Model)
	}

	// Rewrite the chains file with the last chain removed; -watch must pick
	// it up, vet it, and hot-swap.
	var chainDocs []json.RawMessage
	if err := json.Unmarshal(raw, &chainDocs); err != nil {
		t.Fatal(err)
	}
	if len(chainDocs) < 2 {
		t.Fatalf("corpus model has %d chains, need at least 2", len(chainDocs))
	}
	pruned, err := json.Marshal(chainDocs[:len(chainDocs)-1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(liveChains, pruned, 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st = statusz(t, d.httpAddr)
		if st.Model.Active != fpA {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("-watch never swapped away from %s: %+v", fpA, st.Model)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st.Model.Versions != 2 || st.Model.Swaps != 1 {
		t.Errorf("after watch reload: %+v, want 2 versions and 1 swap", st.Model)
	}
	d.sigterm(t)
}

// TestAarohidFlagValidation checks that unknown -overflow and -fsync values
// (and other malformed flags) are rejected with a usage message and exit
// status 2 before the daemon touches any input file.
func TestAarohidFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	aarohidBin := buildTestCmd(t, dir, "aarohid")
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing model", nil, "-chains and -templates are required"},
		{"bad overflow", []string{"-chains", "x", "-templates", "y", "-overflow", "spill"},
			`-overflow must be block or shed, not "spill"`},
		{"bad fsync", []string{"-chains", "x", "-templates", "y", "-fsync", "sometimes"},
			`-fsync must be always, batch or off, not "sometimes"`},
		{"negative watch", []string{"-chains", "x", "-templates", "y", "-watch", "-1s"},
			"-watch must be a non-negative duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(aarohidBin, tc.args...)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("exit = %v, want status 2\n%s", err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("output missing %q:\n%s", tc.want, out)
			}
			// The usage text must follow the error, naming the flags.
			for _, flagName := range []string{"-overflow", "-fsync", "-chains"} {
				if !strings.Contains(string(out), flagName) {
					t.Errorf("usage text missing %s:\n%s", flagName, out)
				}
			}
		})
	}
}

// TestLoggenStreamReconnect starts `loggen -stream` against a port with no
// listener: the sender must retry with backoff, then deliver the entire
// corpus once the daemon comes up, and give up with a non-zero exit when the
// retry budget is exhausted.
func TestLoggenStreamReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries, streams corpora")
	}
	dir := t.TempDir()
	loggenBin := buildTestCmd(t, dir, "loggen")
	aarohidBin := buildTestCmd(t, dir, "aarohid", testBuildRaceFlag()...)
	lines, chains, templates := genSwapCorpus(t, loggenBin, dir, 21)

	// Reserve a port, release it, and point loggen at it before any listener
	// exists — the first dials are refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tcpAddr := l.Addr().String()
	l.Close()

	loggenCmd := exec.Command(loggenBin, "-dialect", "xc30", "-nodes", "8",
		"-duration", "2h", "-failures", "5", "-seed", "21",
		"-stream", tcpAddr, "-retries", "20", "-retry-backoff", "100ms")
	var loggenOut bytes.Buffer
	loggenCmd.Stdout = &loggenOut
	loggenCmd.Stderr = &loggenOut
	if err := loggenCmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { loggenCmd.Process.Kill() })

	// Let a few refused dials happen, then bring the daemon up on that port.
	time.Sleep(300 * time.Millisecond)
	d := startAarohid(t, aarohidBin, "-chains", chains, "-templates", templates,
		"-tcp", tcpAddr, "-http", "127.0.0.1:0", "-grace", "30s")
	if err := loggenCmd.Wait(); err != nil {
		t.Fatalf("loggen exit: %v\n%s", err, loggenOut.String())
	}
	if !strings.Contains(loggenOut.String(), "retry") {
		t.Errorf("loggen reconnect left no retry trace:\n%s", loggenOut.String())
	}
	st := statusz(t, d.httpAddr)
	if st.LinesAccepted != int64(len(lines)) {
		t.Errorf("daemon accepted %d lines, want %d", st.LinesAccepted, len(lines))
	}
	d.sigterm(t)

	// Exhausted budget: no listener ever appears, loggen must fail fast.
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l2.Addr().String()
	l2.Close()
	fail := exec.Command(loggenBin, "-dialect", "xc30", "-nodes", "2",
		"-duration", "10m", "-failures", "1", "-seed", "3",
		"-stream", deadAddr, "-retries", "2", "-retry-backoff", "10ms")
	out, err := fail.CombinedOutput()
	if err == nil {
		t.Fatalf("loggen succeeded against a dead address:\n%s", out)
	}
	if !strings.Contains(string(out), "gave up after 2 consecutive failures") {
		t.Errorf("exhausted-budget message missing:\n%s", out)
	}
}
