package aarohi_test

import (
	"bytes"
	"testing"
	"time"

	aarohi "repro"
	"repro/internal/loggen"
)

// tableIIIInventory is the Table III template set plus a benign phrase.
func tableIIIInventory() []aarohi.Template {
	return []aarohi.Template{
		{ID: 174, Pattern: "[Firmware Bug]: powernow_k8: *", Class: aarohi.Erroneous},
		{ID: 140, Pattern: "DVS: verify_filesystem: *", Class: aarohi.Unknown},
		{ID: 129, Pattern: "DVS: file_node_down: *", Class: aarohi.Unknown},
		{ID: 175, Pattern: "Lustre: * cannot find peer *", Class: aarohi.Unknown},
		{ID: 134, Pattern: "LNet: critical hardware error: *", Class: aarohi.Erroneous},
		{ID: 127, Pattern: "cb_node_unavailable*", Class: aarohi.Failed},
		{ID: 500, Pattern: "sshd[*]: Accepted publickey *", Class: aarohi.Benign},
	}
}

func tableIIIChain() aarohi.FailureChain {
	return aarohi.FailureChain{Name: "FC3", Phrases: []aarohi.PhraseID{174, 140, 129, 175, 134, 127}}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	p, err := aarohi.New([]aarohi.FailureChain{tableIIIChain()}, tableIIIInventory(), aarohi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2015, 3, 14, 4, 58, 57, 640_000_000, time.UTC)
	node := "c0-0c2s0n2"
	lines := []string{
		aarohi.FormatLine(t0, node, "[Firmware Bug]: powernow_k8: acpi mismatch"),
		aarohi.FormatLine(t0.Add(8*time.Second), node, "sshd[123]: Accepted publickey for root"),
		aarohi.FormatLine(t0.Add(9*time.Second), node, "DVS: verify_filesystem: magic 0x6969"),
		aarohi.FormatLine(t0.Add(90*time.Second), node, "DVS: file_node_down: removing c4-2c0s0n2"),
		aarohi.FormatLine(t0.Add(114*time.Second), node, "Lustre: 9876 cannot find peer 10.1.2.3"),
		aarohi.FormatLine(t0.Add(137*time.Second), node, "LNet: critical hardware error: HCA fault"),
		aarohi.FormatLine(t0.Add(267*time.Second), node, "cb_node_unavailable: "+node),
	}
	var pred *aarohi.Prediction
	var failure *aarohi.ObservedFailure
	for _, line := range lines {
		out, err := p.ProcessLine(line)
		if err != nil {
			t.Fatal(err)
		}
		if out.Prediction != nil {
			pred = out.Prediction
		}
		if out.Failure != nil {
			failure = out.Failure
		}
	}
	if pred == nil {
		t.Fatal("no prediction")
	}
	if pred.ChainName != "FC3" || pred.Node != node {
		t.Errorf("prediction = %+v", pred)
	}
	if failure == nil {
		t.Fatal("terminal failure not observed")
	}
	lead := failure.Time.Sub(pred.MatchedAt)
	if lead != 130*time.Second {
		t.Errorf("lead time = %v, want 130s (Table III's final ΔT)", lead)
	}
	st := p.Stats()
	if st.Parser.Matches != 1 || st.Discarded == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPublicAPITrainAndPredict(t *testing.T) {
	log, err := loggen.Generate(loggen.Config{
		Dialect: loggen.DialectXC30, Seed: 42, Duration: 5 * time.Hour,
		Nodes: 10, Failures: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	inventory := log.Dialect.Inventory()
	res, err := aarohi.Train(log.Tokens(), inventory, aarohi.TrainConfig{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chains) == 0 {
		t.Fatal("training mined no chains")
	}
	p, err := aarohi.New(res.Chains, inventory, aarohi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	predicted := map[string]bool{}
	for _, tok := range log.Tokens() {
		if out := p.ProcessToken(tok); out.Prediction != nil {
			predicted[out.Prediction.Node] = true
		}
	}
	hits := 0
	for _, inj := range log.Failures {
		if predicted[inj.Node] {
			hits++
		}
	}
	if hits < len(log.Failures)/2 {
		t.Errorf("self-trained predictor hit %d/%d failed nodes", hits, len(log.Failures))
	}
}

func TestPublicAPITranslateAndIO(t *testing.T) {
	rs, err := aarohi.TranslateFCs([]aarohi.FailureChain{tableIIIChain()}, aarohi.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.TokenList) != 6 || len(rs.Rules) != 1 {
		t.Errorf("rule set: %d tokens, %d rules", len(rs.TokenList), len(rs.Rules))
	}
	var buf bytes.Buffer
	if err := aarohi.WriteChains(&buf, []aarohi.FailureChain{tableIIIChain()}); err != nil {
		t.Fatal(err)
	}
	chains, err := aarohi.ReadChains(&buf)
	if err != nil || len(chains) != 1 || chains[0].Name != "FC3" {
		t.Errorf("chain IO round trip: %v %v", chains, err)
	}
	buf.Reset()
	if err := aarohi.WriteTemplates(&buf, tableIIIInventory()); err != nil {
		t.Fatal(err)
	}
	ts, err := aarohi.ReadTemplates(&buf)
	if err != nil || len(ts) != 7 {
		t.Errorf("template IO round trip: %d %v", len(ts), err)
	}
}

func TestPublicAPIScanner(t *testing.T) {
	sc, err := aarohi.NewScanner(tableIIIInventory())
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := sc.Scan("DVS: verify_filesystem: whatever"); !ok || id != 140 {
		t.Errorf("Scan = (%d,%v)", id, ok)
	}
	if _, ok := sc.Scan("pcieport: Replay Timer Timeout"); ok {
		t.Error("benign message matched")
	}
}

func TestLineRoundTrip(t *testing.T) {
	t0 := time.Date(2015, 3, 14, 4, 58, 57, 640_000_000, time.UTC)
	line := aarohi.FormatLine(t0, "c0-0c2s0n2", "hello world")
	ts, node, msg, err := aarohi.ParseLine(line)
	if err != nil || !ts.Equal(t0) || node != "c0-0c2s0n2" || msg != "hello world" {
		t.Errorf("round trip: %v %q %q %v", ts, node, msg, err)
	}
}
