package aarohi_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline builds the three operational binaries and runs the full
// workflow: generate a cluster log, mine failure chains from it, and predict
// on a fresh log of the same system.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		return out
	}
	loggenBin := build("loggen")
	fctrainBin := build("fctrain")
	aarohiBin := build("aarohi")

	trainLog := filepath.Join(dir, "train.log")
	testLog := filepath.Join(dir, "test.log")
	templates := filepath.Join(dir, "templates.json")
	chains := filepath.Join(dir, "chains.json")

	// 1. Training log (with template export).
	run(t, loggenBin, "-dialect", "xc30", "-nodes", "10", "-duration", "5h",
		"-failures", "12", "-seed", "42", "-out", trainLog, "-templates", templates)
	// 2. Disjoint test log.
	run(t, loggenBin, "-dialect", "xc30", "-nodes", "10", "-duration", "3h",
		"-failures", "4", "-seed", "1042", "-out", testLog)
	// 3. Phase 1: mine chains.
	run(t, fctrainBin, "-in", trainLog, "-templates", templates,
		"-out", chains, "-min-support", "2", "-min-len", "4")
	// 4. Phase 2: online prediction.
	out := run(t, aarohiBin, "-chains", chains, "-templates", templates, "-in", testLog)

	if !strings.Contains(out, "PREDICTION") {
		t.Errorf("no PREDICTION in CLI output:\n%s", tail(out))
	}
	if !strings.Contains(out, "FAILURE") {
		t.Errorf("no FAILURE in CLI output:\n%s", tail(out))
	}
	if !strings.Contains(out, "lead=") {
		t.Errorf("no lead time reported:\n%s", tail(out))
	}
	if strings.Contains(out, "UNPREDICTED") {
		t.Logf("note: some failures unpredicted (acceptable for mined chains):\n%s", tail(out))
	}
	if !strings.Contains(out, "--- stats ---") {
		t.Errorf("no stats block:\n%s", tail(out))
	}
	// Chains JSON must be readable by the library too.
	f, err := os.Open(chains)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	// 5. The fully unsupervised path: no inventory given, templates mined
	// from the raw log.
	minedTpl := filepath.Join(dir, "mined-templates.json")
	minedChains := filepath.Join(dir, "mined-chains.json")
	run(t, fctrainBin, "-in", trainLog, "-mine-templates",
		"-templates-out", minedTpl, "-out", minedChains, "-min-support", "2", "-min-len", "4")
	out = run(t, aarohiBin, "-chains", minedChains, "-templates", minedTpl, "-in", testLog)
	if !strings.Contains(out, "PREDICTION") {
		t.Errorf("unsupervised CLI path made no predictions:\n%s", tail(out))
	}
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func tail(s string) string {
	lines := strings.Split(s, "\n")
	if len(lines) > 25 {
		lines = lines[len(lines)-25:]
	}
	return strings.Join(lines, "\n")
}
