package aarohi_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCLIPipeline builds the three operational binaries and runs the full
// workflow: generate a cluster log, mine failure chains from it, and predict
// on a fresh log of the same system.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		return out
	}
	loggenBin := build("loggen")
	fctrainBin := build("fctrain")
	aarohiBin := build("aarohi")

	trainLog := filepath.Join(dir, "train.log")
	testLog := filepath.Join(dir, "test.log")
	templates := filepath.Join(dir, "templates.json")
	chains := filepath.Join(dir, "chains.json")

	// 1. Training log (with template export).
	run(t, loggenBin, "-dialect", "xc30", "-nodes", "10", "-duration", "5h",
		"-failures", "12", "-seed", "42", "-out", trainLog, "-templates", templates)
	// 2. Disjoint test log.
	run(t, loggenBin, "-dialect", "xc30", "-nodes", "10", "-duration", "3h",
		"-failures", "4", "-seed", "1042", "-out", testLog)
	// 3. Phase 1: mine chains.
	run(t, fctrainBin, "-in", trainLog, "-templates", templates,
		"-out", chains, "-min-support", "2", "-min-len", "4")
	// 4. Phase 2: online prediction.
	out := run(t, aarohiBin, "-chains", chains, "-templates", templates, "-in", testLog)

	if !strings.Contains(out, "PREDICTION") {
		t.Errorf("no PREDICTION in CLI output:\n%s", tail(out))
	}
	if !strings.Contains(out, "FAILURE") {
		t.Errorf("no FAILURE in CLI output:\n%s", tail(out))
	}
	if !strings.Contains(out, "lead=") {
		t.Errorf("no lead time reported:\n%s", tail(out))
	}
	if strings.Contains(out, "UNPREDICTED") {
		t.Logf("note: some failures unpredicted (acceptable for mined chains):\n%s", tail(out))
	}
	if !strings.Contains(out, "--- stats ---") {
		t.Errorf("no stats block:\n%s", tail(out))
	}
	// Chains JSON must be readable by the library too.
	f, err := os.Open(chains)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	// 5. The fully unsupervised path: no inventory given, templates mined
	// from the raw log.
	minedTpl := filepath.Join(dir, "mined-templates.json")
	minedChains := filepath.Join(dir, "mined-chains.json")
	run(t, fctrainBin, "-in", trainLog, "-mine-templates",
		"-templates-out", minedTpl, "-out", minedChains, "-min-support", "2", "-min-len", "4")
	out = run(t, aarohiBin, "-chains", minedChains, "-templates", minedTpl, "-in", testLog)
	if !strings.Contains(out, "PREDICTION") {
		t.Errorf("unsupervised CLI path made no predictions:\n%s", tail(out))
	}
}

// TestAarohidDaemon exercises the streaming daemon end to end as real
// processes: boot aarohid on ephemeral loopback ports, load it over TCP with
// `loggen -stream`, confirm /statusz accounts for every line, then SIGTERM
// and check the graceful drain's final stats report.
func TestAarohidDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		return out
	}
	loggenBin := build("loggen")
	aarohidBin := build("aarohid")

	// Export the model and a reference copy of the log that -stream will
	// regenerate (same seed and parameters → identical lines).
	templates := filepath.Join(dir, "templates.json")
	chains := filepath.Join(dir, "chains.json")
	refLog := filepath.Join(dir, "ref.log")
	genArgs := []string{"-dialect", "xc30", "-nodes", "6", "-duration", "1h",
		"-failures", "2", "-seed", "9"}
	run(t, loggenBin, append(genArgs, "-out", refLog, "-templates", templates, "-chains", chains)...)
	refBytes, err := os.ReadFile(refLog)
	if err != nil {
		t.Fatal(err)
	}
	wantLines := strings.Count(string(refBytes), "\n")

	daemon := exec.Command(aarohidBin, "-chains", chains, "-templates", templates,
		"-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0", "-grace", "20s")
	var stdout bytes.Buffer
	daemon.Stdout = &stdout
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	// The daemon logs its bound addresses on stderr; scrape them.
	addrRe := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)
	var tcpAddr, httpAddr string
	var stderrTail strings.Builder
	sc := bufio.NewScanner(stderr)
	for sc.Scan() && (tcpAddr == "" || httpAddr == "") {
		line := sc.Text()
		stderrTail.WriteString(line + "\n")
		if m := addrRe.FindStringSubmatch(line); m != nil {
			switch {
			case strings.Contains(line, "tcp line protocol"):
				tcpAddr = m[1]
			case strings.Contains(line, "http api"):
				httpAddr = m[1]
			}
		}
	}
	if tcpAddr == "" || httpAddr == "" {
		t.Fatalf("daemon never reported its addresses; stderr:\n%s", stderrTail.String())
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	waitHTTP(t, "http://"+httpAddr+"/readyz")
	run(t, loggenBin, append(genArgs, "-stream", tcpAddr)...)

	// statusz must reconcile: every streamed line accepted (block mode).
	var status struct {
		Accepted int64 `json:"lines_accepted"`
		Dropped  int64 `json:"lines_dropped"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + httpAddr + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.Accepted+status.Dropped >= int64(wantLines) || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if status.Accepted != int64(wantLines) || status.Dropped != 0 {
		t.Fatalf("statusz accepted=%d dropped=%d, want accepted=%d dropped=0",
			status.Accepted, status.Dropped, wantLines)
	}

	// SIGTERM → graceful drain → final stats on stdout → clean exit.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("daemon exit: %v\nstdout:\n%s", err, stdout.String())
	}
	final := stdout.String()
	if !strings.Contains(final, "--- final stats ---") {
		t.Errorf("no final stats report:\n%s", final)
	}
	if !strings.Contains(final, fmt.Sprintf(`"lines_accepted": %d`, wantLines)) {
		t.Errorf("final stats do not account for %d accepted lines:\n%s", wantLines, final)
	}
}

func waitHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became ready: %v", url, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func tail(s string) string {
	lines := strings.Split(s, "\n")
	if len(lines) > 25 {
		lines = lines[len(lines)-25:]
	}
	return strings.Join(lines, "\n")
}
