package aarohi_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestAarohidArbiterCrashRecovery proves the arbiter's fused alert state —
// phi interval windows, flap history, chain precision ledgers, pending
// evidence — rides the daemon's durability path: SIGKILL aarohid mid-stream,
// restart, resume from the durable offset, and the ranked alert list plus
// the /statusz arbitration block must be byte-identical to an uninterrupted
// run's. Two scenarios: replay-only recovery (whole journal refeeds a fresh
// arbiter) and snapshot+tail (the framed arbiter snapshot restores, then the
// journal tail replays on top).
func TestAarohidArbiterCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries, kills processes")
	}
	dir := t.TempDir()
	build := func(name string, extra ...string) string {
		out := filepath.Join(dir, name)
		args := append([]string{"build"}, extra...)
		args = append(args, "-o", out, "./cmd/"+name)
		cmd := exec.Command("go", args...)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		return out
	}
	loggenBin := build("loggen")
	aarohidBin := build("aarohid", testBuildRaceFlag()...)

	templates := filepath.Join(dir, "templates.json")
	chains := filepath.Join(dir, "chains.json")
	refLog := filepath.Join(dir, "ref.log")
	run(t, loggenBin, "-dialect", "xc30", "-nodes", "6", "-duration", "1h",
		"-failures", "3", "-seed", "91", "-out", refLog, "-templates", templates, "-chains", chains)
	raw, err := os.ReadFile(refLog)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")

	arbArgs := []string{"-chains", chains, "-templates", templates,
		"-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0", "-grace", "30s",
		"-arbiter", "-horizon", "20m", "-alert-threshold", "0.000000001",
		"-criticality", "c0-0c0s0n0=1,c0-0c0s0n1=2"}

	// Uninterrupted reference run: stream everything, settle, capture the
	// alert list and arbitration block.
	var refAlerts, refStatus []byte
	{
		d := startAarohid(t, aarohidBin, arbArgs...)
		streamLines(t, d.tcpAddr, lines)
		refStatus = settleArbiter(t, d.httpAddr, len(lines))
		refAlerts = fetchAlerts(t, d.httpAddr)
		d.sigterm(t)
	}
	if len(refAlerts) == 0 || !bytes.Contains(refStatus, []byte(`"heartbeats"`)) {
		t.Fatalf("reference run: empty alerts (%d bytes) or arbiter block %s", len(refAlerts), refStatus)
	}

	t.Run("replay-only", func(t *testing.T) {
		// -snapshot-interval 0: nothing is snapshotted before the kill, so
		// the restart replays the whole journal into a fresh arbiter.
		dataDir := filepath.Join(dir, "data-replay")
		args := append([]string{"-data-dir", dataDir, "-fsync", "always", "-snapshot-interval", "0"}, arbArgs...)

		d := startAarohid(t, aarohidBin, args...)
		streamLines(t, d.tcpAddr, lines[:len(lines)/2])
		waitDurable(t, d.httpAddr, len(lines)/2)
		d.sigkill(t)

		d = startAarohid(t, aarohidBin, args...)
		st := statusz(t, d.httpAddr)
		if st.Recovery == nil || !st.Recovery.Performed || st.Recovery.ReplayedRecords == 0 {
			t.Fatalf("restart reported recovery %+v, want journal replay", st.Recovery)
		}
		pos := int(st.WAL.LastIndex)
		streamLines(t, d.tcpAddr, lines[pos:])
		gotStatus := settleArbiter(t, d.httpAddr, len(lines))
		gotAlerts := fetchAlerts(t, d.httpAddr)
		d.sigterm(t)

		if !bytes.Equal(gotAlerts, refAlerts) {
			t.Errorf("alerts after replay-only recovery diverge from uninterrupted run:\n got: %s\nwant: %s", gotAlerts, refAlerts)
		}
		if !bytes.Equal(gotStatus, refStatus) {
			t.Errorf("arbitration block after replay-only recovery diverges:\n got: %s\nwant: %s", gotStatus, refStatus)
		}
	})

	t.Run("snapshot-tail", func(t *testing.T) {
		// Periodic snapshots: the kill lands after at least one snapshot, so
		// the restart restores the framed arbiter payload and replays only
		// the journal tail on top of it.
		dataDir := filepath.Join(dir, "data-snap")
		args := append([]string{"-data-dir", dataDir, "-fsync", "always", "-snapshot-interval", "200ms"}, arbArgs...)

		d := startAarohid(t, aarohidBin, args...)
		streamLines(t, d.tcpAddr, lines[:len(lines)/2])
		waitDurable(t, d.httpAddr, len(lines)/2)
		waitSnapshot(t, d.httpAddr)
		streamLines(t, d.tcpAddr, lines[len(lines)/2:3*len(lines)/4])
		d.sigkill(t)

		d = startAarohid(t, aarohidBin, args...)
		st := statusz(t, d.httpAddr)
		if st.Recovery == nil || !st.Recovery.Performed || st.Recovery.SnapshotIndex == 0 {
			t.Fatalf("restart reported recovery %+v, want snapshot restore", st.Recovery)
		}
		pos := int(st.WAL.LastIndex)
		streamLines(t, d.tcpAddr, lines[pos:])
		gotStatus := settleArbiter(t, d.httpAddr, len(lines))
		gotAlerts := fetchAlerts(t, d.httpAddr)
		d.sigterm(t)

		if !bytes.Equal(gotAlerts, refAlerts) {
			t.Errorf("alerts after snapshot+tail recovery diverge from uninterrupted run:\n got: %s\nwant: %s", gotAlerts, refAlerts)
		}
		if !bytes.Equal(gotStatus, refStatus) {
			t.Errorf("arbitration block after snapshot+tail recovery diverges:\n got: %s\nwant: %s", gotStatus, refStatus)
		}
	})
}

// settleArbiter polls /statusz until the arbiter has seen every streamed
// line's heartbeat and the whole arbitration block has stopped changing
// (predictions ride the async fan-out and can trail the synchronous
// heartbeat count), then returns the block's raw JSON.
func settleArbiter(t *testing.T, httpAddr string, wantHeartbeats int) []byte {
	t.Helper()
	var prev []byte
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		cur := arbiterBlock(t, httpAddr)
		var block struct {
			Heartbeats uint64 `json:"heartbeats"`
		}
		if err := json.Unmarshal(cur, &block); err == nil &&
			block.Heartbeats == uint64(wantHeartbeats) && bytes.Equal(cur, prev) {
			return cur
		}
		prev = cur
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("arbiter never settled at %d heartbeats; last block: %s", wantHeartbeats, prev)
	return nil
}

func arbiterBlock(t *testing.T, httpAddr string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Arbiter json.RawMessage `json:"arbiter"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Arbiter) == 0 {
		t.Fatal("statusz has no arbiter block despite -arbiter")
	}
	return st.Arbiter
}

func fetchAlerts(t *testing.T, httpAddr string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/predictions?mode=alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predictions?mode=alerts status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(bufio.NewReader(resp.Body))
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// waitDurable blocks until the journal's durable offset covers the first n
// streamed lines. streamLines returns once the TCP handler has consumed the
// bytes into the ingest queue; the WAL append pump can trail that under load,
// so a SIGKILL fired immediately after streaming could land on an empty or
// short journal.
func waitDurable(t *testing.T, httpAddr string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := statusz(t, httpAddr)
		if st.WAL != nil && int(st.WAL.LastIndex) >= n {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("journal never reached durable offset %d", n)
}

// waitSnapshot blocks until the daemon has written a snapshot covering at
// least one journal record, so the restart after SIGKILL must restore it.
func waitSnapshot(t *testing.T, httpAddr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := statusz(t, httpAddr)
		if st.WAL != nil && st.WAL.LastSnapshotIndex > 0 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never wrote a snapshot covering the journal")
}
