// Package aarohi is an online node-failure predictor for large-scale
// computing systems, reproducing "Aarohi: Making Real-Time Node Failure
// Prediction Feasible" (Das, Mueller, Rountree — IPDPS 2020).
//
// Aarohi turns failure chains (FCs) — sequences of log-phrase templates that
// an offline Phase-1 trainer has learned to precede node failures — into a
// generated scanner and LALR(1) parser. The scanner tokenizes each incoming
// log message in one pass over a combined DFA, discarding everything not
// FC-related; the parser advances one per-node parse per token with ΔT
// timeout semantics and flags an impending failure the moment a chain
// completes, minutes before the node stops responding.
//
// # Quick start
//
//	chains, _ := aarohi.ReadChains(chainsFile)       // Phase-1 output
//	inventory, _ := aarohi.ReadTemplates(tplFile)    // phrase templates
//	p, _ := aarohi.New(chains, inventory, aarohi.Options{})
//	for line := range logLines {
//	    out, _ := p.ProcessLine(line)
//	    if out.Prediction != nil {
//	        migrate(out.Prediction.Node) // >2 min of lead time, typically
//	    }
//	}
//
// Phase 1 itself can be run with Train, which mines failure chains from a
// labeled historical log.
package aarohi

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/lexgen"
	"repro/internal/parser"
	"repro/internal/predictor"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/trainer"
	"repro/internal/vet"
	"repro/internal/wal"
)

// Core data-model types.
type (
	// PhraseID identifies a distinct phrase template.
	PhraseID = core.PhraseID
	// Class labels a phrase: Benign, Unknown, Erroneous or Failed.
	Class = core.Class
	// Template is a phrase template with '*' wildcards.
	Template = core.Template
	// Token is one scanned log event: phrase, arrival time, node.
	Token = core.Token
	// FailureChain is a learned sequence of phrases ending in a node
	// failure.
	FailureChain = core.FailureChain
	// RuleSet is the compiled output of Algorithm 1 (token list, factored
	// rules, LALR tables).
	RuleSet = core.RuleSet
	// TranslateOptions configure chain-to-rule translation.
	TranslateOptions = core.Options
)

// Phrase classes.
const (
	Benign    = core.Benign
	Unknown   = core.Unknown
	Erroneous = core.Erroneous
	Failed    = core.Failed
)

// DefaultTimeout is the default ΔT threshold between adjacent chain phrases
// (4 minutes, per the paper's Fig. 5 analysis).
const DefaultTimeout = core.DefaultTimeout

// Predictor types.
type (
	// Predictor is the cluster-wide online predictor: one generated scanner
	// plus one parse driver per node.
	Predictor = predictor.Predictor
	// Options configure predictor construction.
	Options = predictor.Options
	// Output is the result of processing one event.
	Output = predictor.Output
	// Prediction is one flagged impending node failure.
	Prediction = parser.Prediction
	// ObservedFailure reports the arrival of a terminal failed message.
	ObservedFailure = predictor.ObservedFailure
	// Stats aggregates scanner and parser activity counters.
	Stats = predictor.Stats
)

// Streaming-service types (the cmd/aarohid deployment shape).
type (
	// Manager is the sharded cluster-wide predictor: per-node drivers
	// distributed across worker goroutines, results on a channel.
	Manager = predictor.Manager
	// ServeConfig parameterizes the streaming ingestion server.
	ServeConfig = serve.Config
	// Server exposes a Manager as a network service: TCP line protocol,
	// HTTP ingest/predictions/health endpoints, graceful drain.
	Server = serve.Server
	// ServeStatus is the /statusz document: server counters plus the live
	// Manager stats.
	ServeStatus = serve.Status
	// ServeClient talks to a Server's HTTP API.
	ServeClient = serve.Client
	// Subscription is one attached prediction consumer.
	Subscription = serve.Subscription
	// OverflowPolicy says what a full ingest queue does.
	OverflowPolicy = serve.OverflowPolicy
)

// Ingest-queue overflow policies.
const (
	// OverflowBlock applies backpressure to producers; nothing accepted is
	// ever dropped.
	OverflowBlock = serve.Block
	// OverflowShed drops on a full queue and counts the loss.
	OverflowShed = serve.Shed
)

// Durability types (the write-ahead journal + snapshot layer a Server runs
// when ServeConfig.DataDir is set).
type (
	// SyncPolicy says when the write-ahead journal calls fsync.
	SyncPolicy = wal.SyncPolicy
	// WALStatus is the /statusz "wal" block: journal and snapshot counters.
	WALStatus = serve.WALStatus
	// RecoveryStatus is the /statusz "recovery" block describing the
	// boot-time snapshot restore + journal replay.
	RecoveryStatus = serve.RecoveryStatus
)

// Model-lifecycle types (the registry a Server runs when ServeConfig.Model
// is set: versioned vet-gated model store, zero-loss hot-swap, shadow
// evaluation, rollback).
type (
	// Model is a complete predictor model: chains + template inventory +
	// construction options, the unit of registry versioning.
	Model = registry.Model
	// ModelEntry describes one admitted model version.
	ModelEntry = registry.Entry
	// ModelRegistry is the versioned, content-addressed model store.
	ModelRegistry = registry.Registry
	// SwapReport describes one completed model hot-swap.
	SwapReport = serve.SwapReport
	// ModelStatus is the /statusz "model" block.
	ModelStatus = serve.ModelStatus
	// ShadowStatus is the /statusz "shadow" block: the candidate model
	// running in parallel and its agreement with the primary.
	ShadowStatus = serve.ShadowStatus
	// ModelUpload is the POST /model document.
	ModelUpload = serve.ModelUpload
)

// ErrModelRejected is returned (wrapped) when a model fails the vet gate at
// registry admission; the accompanying VetReport carries the findings.
var ErrModelRejected = registry.ErrRejected

// Journal fsync policies.
const (
	// SyncBatch groups fsyncs on a short ticker: bounded loss window,
	// near-SyncOff throughput. The default.
	SyncBatch = wal.SyncBatch
	// SyncAlways fsyncs before acknowledging every append: no accepted line
	// is ever lost.
	SyncAlways = wal.SyncAlways
	// SyncOff leaves flushing to the OS page cache.
	SyncOff = wal.SyncOff
)

// ParseSyncPolicy parses "always", "batch" or "off" (the -fsync flag values).
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// ErrManagerClosed is returned by Manager.Process* after Close.
var ErrManagerClosed = predictor.ErrClosed

// Phase-1 types.
type (
	// TrainConfig parameterizes failure-chain mining.
	TrainConfig = trainer.Config
	// TrainResult is the Phase-1 output: mined chains plus diagnostics.
	TrainResult = trainer.Result
)

// Scanner is the generated tokenizer over a template inventory.
type Scanner = lexgen.Scanner

// Static-analysis (vet) types.
type (
	// VetConfig tunes the static-analysis suite.
	VetConfig = vet.Config
	// VetReport is the outcome of a vet run, findings ordered most severe
	// first.
	VetReport = vet.Report
	// VetFinding is one diagnostic produced by a vet check.
	VetFinding = vet.Finding
)

// Vet severities.
const (
	VetInfo    = vet.Info
	VetWarning = vet.Warning
	VetError   = vet.Error
)

// Vet statically analyzes a model — failure chains plus an optional template
// inventory — for defects that make the online predictor misbehave:
// duplicate or prefix-shadowed chains, dead templates, overlapping scanner
// patterns, unsatisfiable ΔT budgets, and grammar conflicts. The aarohivet
// command wraps this; VetHook adapts it to TranslateOptions.Vet so flawed
// models fail at compile time.
func Vet(chains []FailureChain, inventory []Template, cfg VetConfig) (*VetReport, error) {
	return vet.Run(vet.Model{Chains: chains, Templates: inventory}, cfg)
}

// VetHook returns a TranslateOptions.Vet hook that rejects rule sets with
// error-severity vet findings.
func VetHook(inventory []Template, cfg VetConfig) func(*RuleSet) error {
	return vet.CompileHook(inventory, cfg)
}

// New builds an online predictor from Phase-1 failure chains and the
// system's template inventory. Chains ending in a Failed-class phrase
// predict at their last precursor; the terminal phrase is still recognized
// and reported as an ObservedFailure.
func New(chains []FailureChain, inventory []Template, opts Options) (*Predictor, error) {
	return predictor.New(chains, inventory, opts)
}

// NewManager builds the sharded concurrent predictor (0 workers →
// GOMAXPROCS). Per-node event order is preserved across workers.
func NewManager(chains []FailureChain, inventory []Template, opts Options, workers int) (*Manager, error) {
	return predictor.NewManager(chains, inventory, opts, workers)
}

// NewServer wraps a Manager in the streaming ingestion service: a TCP
// line-protocol listener and an HTTP API (POST /ingest, GET /predictions,
// /healthz, /readyz, /statusz) over a bounded ingest queue with an explicit
// overflow policy. Start it with Start or Run; Shutdown drains gracefully.
// cmd/aarohid is the stand-alone daemon built on this.
func NewServer(m *Manager, cfg ServeConfig) *Server {
	return serve.New(m, cfg)
}

// Train mines failure chains from a time-sorted, labeled token stream — the
// Phase-1 step. Any alternative trainer works as long as it produces
// coherent FailureChains.
func Train(tokens []Token, inventory []Template, cfg TrainConfig) (*TrainResult, error) {
	return trainer.Train(tokens, inventory, cfg)
}

// TranslateFCs runs Algorithm 1 alone: failure chains → token list + LALR(1)
// rule set. New calls this internally; it is exposed for inspection and for
// building custom drivers.
func TranslateFCs(chains []FailureChain, opts TranslateOptions) (*RuleSet, error) {
	return core.TranslateFCs(chains, opts)
}

// NewScanner compiles a template inventory into a standalone scanner.
func NewScanner(templates []Template) (*Scanner, error) {
	return lexgen.NewScanner(templates)
}

// ReadChains deserializes failure chains from JSON.
func ReadChains(r io.Reader) ([]FailureChain, error) { return core.ReadChains(r) }

// WriteChains serializes failure chains as JSON.
func WriteChains(w io.Writer, chains []FailureChain) error { return core.WriteChains(w, chains) }

// ReadTemplates deserializes a template inventory from JSON.
func ReadTemplates(r io.Reader) ([]Template, error) { return core.ReadTemplates(r) }

// WriteTemplates serializes a template inventory as JSON.
func WriteTemplates(w io.Writer, ts []Template) error { return core.WriteTemplates(w, ts) }

// ParseLine splits a raw log line ("RFC3339-ms node message...") into its
// parts.
func ParseLine(line string) (ts time.Time, node, msg string, err error) {
	return lexgen.ParseLine(line)
}

// FormatLine renders a log line in the canonical layout.
func FormatLine(ts time.Time, node, msg string) string { return lexgen.FormatLine(ts, node, msg) }
