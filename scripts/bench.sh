#!/usr/bin/env sh
# Ingest-throughput benchmark run: BenchmarkServeIngest (the full queue →
# WAL → scan → parse path) plus the scanner microbenchmarks, rendered into
# BENCH_ingest.json so the trajectory ROADMAP item 2 tracks lives in the
# repo. Re-run on a quiet machine and commit the file when the numbers move
# for a reason.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=3s scripts/bench.sh    # longer per-benchmark budget

set -eu

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_ingest.json}"
BENCHTIME="${BENCHTIME:-2s}"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "==> BenchmarkServeIngest (${BENCHTIME})"
go test -run='^$' -bench='^BenchmarkServeIngest$' -benchtime="$BENCHTIME" -benchmem ./internal/serve | tee -a "$TMP"

echo "==> scanner benchmarks (${BENCHTIME})"
go test -run='^$' -bench='^BenchmarkScanFCMessage$|^BenchmarkScanBenignMessage$' -benchtime="$BENCHTIME" -benchmem ./internal/lexgen | tee -a "$TMP"

awk -v go_version="$(go env GOVERSION)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
    printf "{\n  \"generated_by\": \"scripts/bench.sh\",\n"
    printf "  \"go\": \"%s\",\n  \"date\": \"%s\",\n  \"benchmarks\": [", go_version, date
    first = 1
}
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = mb = bytes = allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "MB/s") mb = $(i - 1)
        else if ($i == "B/op") bytes = $(i - 1)
        else if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ","
    first = 0
    printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (mb != "") printf ", \"mb_per_s\": %s", mb
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$TMP" > "$OUT"

echo "==> wrote $OUT"
