#!/usr/bin/env sh
# Benchmark trajectory run: BenchmarkServeIngest (the full queue → WAL →
# scan → parse path), the scanner microbenchmarks, and the arbiter hot-path
# benchmarks, appended as one NDJSON line per run to BENCH_trajectory.ndjson
# so the history of the numbers (ROADMAP item 2) lives in the repo across
# PRs instead of each run overwriting the last. Re-run on a quiet machine
# and commit the file when the numbers move for a reason.
#
# Usage: scripts/bench.sh [trajectory.ndjson]
#   BENCHTIME=3s scripts/bench.sh      # longer per-benchmark budget
#
# Regression gate (wired into scripts/check.sh, hence CI):
#   scripts/bench.sh -check [trajectory.ndjson]
#     Runs the suite TWICE at a fixed -benchtime, takes the best (minimum)
#     ns/op per benchmark to shave scheduler noise, and compares against the
#     newest entry in the trajectory file. Fails if any benchmark present in
#     both runs got >20% slower, or if any hot-path benchmark allocates.
#     Never appends to the trajectory.
#   scripts/bench.sh -selftest
#     Exercises the comparison logic on canned numbers: a clean run must
#     pass, an injected 25% regression and an injected allocation must fail.

set -eu

cd "$(dirname "$0")/.."

MODE=run
case "${1:-}" in
-check) MODE=check; shift ;;
-selftest) MODE=selftest; shift ;;
esac

OUT="${1:-BENCH_trajectory.ndjson}"
# Trajectory runs default to 2s per benchmark; the gate's two passes use a
# shorter fixed budget (best-of-2 soaks up most of the extra noise).
if [ "$MODE" = check ]; then
    BENCHTIME="${BENCHTIME:-500ms}"
else
    BENCHTIME="${BENCHTIME:-2s}"
fi

# The gate skips the fsync-always ingest variants: their numbers are
# device-dominated (one fsync per batch or per line), so at the gate's short
# budget run-to-run spread swamps any code regression. They stay in the
# trajectory file for the record; the CPU-bound variants gate the code.
SERVE_PAT='^BenchmarkServeIngest$'
if [ "$MODE" = check ]; then
    SERVE_PAT='^BenchmarkServeIngest$/^(nowal|wal|wal-perline|wal-off|shards1|shards4|fwd)$'
fi

# bench_suite RAWFILE — run every trajectory benchmark, appending the raw
# `go test -bench` text to RAWFILE (and echoing it).
bench_suite() {
    echo "==> BenchmarkServeIngest (${BENCHTIME})"
    go test -run='^$' -bench="$SERVE_PAT" -benchtime="$BENCHTIME" -benchmem ./internal/serve | tee -a "$1"

    echo "==> scanner benchmarks (${BENCHTIME})"
    go test -run='^$' -bench='^BenchmarkScanFCMessage$|^BenchmarkScanBenignMessage$' -benchtime="$BENCHTIME" -benchmem ./internal/lexgen | tee -a "$1"

    echo "==> arbiter benchmarks (${BENCHTIME})"
    go test -run='^$' -bench='^BenchmarkArbiterObserveHeartbeat$|^BenchmarkArbiterScore$' -benchtime="$BENCHTIME" -benchmem ./internal/arbiter | tee -a "$1"
}

# raw_to_tsv RAWFILE — "name ns_per_op allocs_per_op", one benchmark per line.
raw_to_tsv() {
    awk '
    /^Benchmark/ {
        name = $1
        sub(/^Benchmark/, "", name)
        sub(/-[0-9]+$/, "", name)
        ns = allocs = ""
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op") ns = $(i - 1)
            else if ($i == "allocs/op") allocs = $(i - 1)
        }
        if (ns == "") next
        print name, ns, (allocs == "" ? 0 : allocs)
    }' "$1"
}

# trajectory_to_tsv FILE — same tuple format, from the newest NDJSON entry.
trajectory_to_tsv() {
    tail -n 1 "$1" | awk '
    {
        line = $0
        while (match(line, /\{"name": "[^"]*"[^}]*\}/)) {
            obj = substr(line, RSTART, RLENGTH)
            line = substr(line, RSTART + RLENGTH)
            name = ns = allocs = ""
            if (match(obj, /"name": "[^"]*"/))
                name = substr(obj, RSTART + 9, RLENGTH - 10)
            if (match(obj, /"ns_per_op": [0-9.e+-]+/))
                ns = substr(obj, RSTART + 13, RLENGTH - 13)
            if (match(obj, /"allocs_per_op": [0-9.e+-]+/))
                allocs = substr(obj, RSTART + 17, RLENGTH - 17)
            if (name != "" && ns != "")
                print name, ns, (allocs == "" ? 0 : allocs)
        }
    }'
}

# min_tsv A B — per-name minimum ns/op and allocs/op across two runs.
min_tsv() {
    cat "$1" "$2" | awk '
    {
        if (!($1 in ns) || $2 + 0 < ns[$1] + 0) ns[$1] = $2
        if (!($1 in al) || $3 + 0 < al[$1] + 0) al[$1] = $3
        if (!($1 in seen)) { order[++n] = $1; seen[$1] = 1 }
    }
    END { for (i = 1; i <= n; i++) print order[i], ns[order[i]], al[order[i]] }'
}

# compare_tsv BASELINE FRESH — the gate itself. Benchmarks are matched by
# name; ones that exist on only one side are reported but never fail the
# gate (the suite grows over time). Exit 1 on regression, 2 if nothing at
# all could be compared (an empty intersection would pass vacuously).
compare_tsv() {
    awk '
    NR == FNR { base_ns[$1] = $2; base_al[$1] = $3; next }
    {
        if (!($1 in base_ns)) {
            printf "   new  %-28s %12.1f ns/op (no baseline entry)\n", $1, $2
            next
        }
        matched[$1] = 1
        compared++
        limit = base_ns[$1] * 1.2
        bad = ""
        if ($2 + 0 > limit) bad = "regressed"
        if ($3 + 0 > 0) bad = (bad == "" ? "allocates" : bad " + allocates")
        if (bad != "") {
            fail++
            printf "   FAIL %-28s %12.1f ns/op vs baseline %.1f (limit %.1f), %s allocs/op — %s\n",
                $1, $2, base_ns[$1], limit, $3, bad
        } else {
            printf "   ok   %-28s %12.1f ns/op vs baseline %.1f (limit %.1f)\n",
                $1, $2, base_ns[$1], limit
        }
    }
    END {
        for (name in base_ns) if (!(name in matched))
            printf "   gone %-28s (in baseline, not in this run)\n", name
        if (compared == 0) { print "   no benchmarks in common with the baseline"; exit 2 }
        if (fail > 0) { printf "   %d of %d benchmarks failed the gate\n", fail, compared; exit 1 }
        printf "   %d benchmarks within budget\n", compared
    }' "$1" "$2"
}

if [ "$MODE" = selftest ]; then
    # Canned numbers through the real comparator: the gate must catch what
    # it claims to catch before CI trusts it.
    TD="$(mktemp -d)"
    trap 'rm -rf "$TD"' EXIT
    printf 'ServeIngest/wal 1000 0\nScanFC 600 0\n' > "$TD/base"

    printf 'ServeIngest/wal 1100 0\nScanFC 590 0\n' > "$TD/clean"
    echo "==> selftest: clean run (10% drift) must pass"
    compare_tsv "$TD/base" "$TD/clean" || { echo "selftest FAILED: clean run rejected"; exit 1; }

    printf 'ServeIngest/wal 1250 0\nScanFC 590 0\n' > "$TD/slow"
    echo "==> selftest: injected 25% regression must fail"
    if compare_tsv "$TD/base" "$TD/slow"; then
        echo "selftest FAILED: 25% regression passed the gate"; exit 1
    fi

    printf 'ServeIngest/wal 1000 1\nScanFC 590 0\n' > "$TD/alloc"
    echo "==> selftest: injected allocation must fail"
    if compare_tsv "$TD/base" "$TD/alloc"; then
        echo "selftest FAILED: allocating hot path passed the gate"; exit 1
    fi

    printf 'Unrelated 5 0\n' > "$TD/disjoint"
    echo "==> selftest: empty intersection must not pass vacuously"
    if compare_tsv "$TD/base" "$TD/disjoint"; then
        echo "selftest FAILED: disjoint benchmark sets passed the gate"; exit 1
    fi
    echo "==> selftest passed"
    exit 0
fi

if [ "$MODE" = check ]; then
    [ -f "$OUT" ] || { echo "bench.sh -check: no trajectory file $OUT"; exit 1; }
    TD="$(mktemp -d)"
    trap 'rm -rf "$TD"' EXIT
    echo "==> bench gate: 2 runs at ${BENCHTIME}, best-of-2 vs newest $OUT entry"
    # Settle outstanding writeback (earlier tests, the first gate run) so it
    # does not tax the timed windows.
    sync || true
    bench_suite "$TD/raw1" > /dev/null
    sync || true
    bench_suite "$TD/raw2" > /dev/null
    raw_to_tsv "$TD/raw1" > "$TD/tsv1"
    raw_to_tsv "$TD/raw2" > "$TD/tsv2"
    min_tsv "$TD/tsv1" "$TD/tsv2" > "$TD/fresh"
    trajectory_to_tsv "$OUT" > "$TD/base"
    echo "==> comparing against baseline ($(wc -l < "$TD/base" | tr -d ' ') benchmarks)"
    compare_tsv "$TD/base" "$TD/fresh"
    echo "==> bench gate passed"
    exit 0
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Seed the trajectory from the legacy single-run snapshot so its data point
# is not lost (one-time: only when the trajectory file does not exist yet).
if [ ! -f "$OUT" ] && [ -f BENCH_ingest.json ]; then
    tr '\n' ' ' < BENCH_ingest.json | tr -s ' ' > "$OUT"
    printf '\n' >> "$OUT"
    echo "==> seeded $OUT from BENCH_ingest.json"
fi

bench_suite "$TMP"

awk -v go_version="$(go env GOVERSION)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
    printf "{\"generated_by\": \"scripts/bench.sh\", "
    printf "\"go\": \"%s\", \"date\": \"%s\", \"benchmarks\": [", go_version, date
    first = 1
}
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = mb = bytes = allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "MB/s") mb = $(i - 1)
        else if ($i == "B/op") bytes = $(i - 1)
        else if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ", "
    first = 0
    printf "{\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (mb != "") printf ", \"mb_per_s\": %s", mb
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "]}\n" }
' "$TMP" >> "$OUT"

echo "==> appended run to $OUT ($(wc -l < "$OUT" | tr -d ' ') runs total)"
