#!/usr/bin/env sh
# Benchmark trajectory run: BenchmarkServeIngest (the full queue → WAL →
# scan → parse path), the scanner microbenchmarks, and the arbiter hot-path
# benchmarks, appended as one NDJSON line per run to BENCH_trajectory.ndjson
# so the history of the numbers (ROADMAP item 2) lives in the repo across
# PRs instead of each run overwriting the last. Re-run on a quiet machine
# and commit the file when the numbers move for a reason.
#
# Usage: scripts/bench.sh [trajectory.ndjson]
#   BENCHTIME=3s scripts/bench.sh    # longer per-benchmark budget

set -eu

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_trajectory.ndjson}"
BENCHTIME="${BENCHTIME:-2s}"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Seed the trajectory from the legacy single-run snapshot so its data point
# is not lost (one-time: only when the trajectory file does not exist yet).
if [ ! -f "$OUT" ] && [ -f BENCH_ingest.json ]; then
    tr '\n' ' ' < BENCH_ingest.json | tr -s ' ' > "$OUT"
    printf '\n' >> "$OUT"
    echo "==> seeded $OUT from BENCH_ingest.json"
fi

echo "==> BenchmarkServeIngest (${BENCHTIME})"
go test -run='^$' -bench='^BenchmarkServeIngest$' -benchtime="$BENCHTIME" -benchmem ./internal/serve | tee -a "$TMP"

echo "==> scanner benchmarks (${BENCHTIME})"
go test -run='^$' -bench='^BenchmarkScanFCMessage$|^BenchmarkScanBenignMessage$' -benchtime="$BENCHTIME" -benchmem ./internal/lexgen | tee -a "$TMP"

echo "==> arbiter benchmarks (${BENCHTIME})"
go test -run='^$' -bench='^BenchmarkArbiterObserveHeartbeat$|^BenchmarkArbiterScore$' -benchtime="$BENCHTIME" -benchmem ./internal/arbiter | tee -a "$TMP"

awk -v go_version="$(go env GOVERSION)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
    printf "{\"generated_by\": \"scripts/bench.sh\", "
    printf "\"go\": \"%s\", \"date\": \"%s\", \"benchmarks\": [", go_version, date
    first = 1
}
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = mb = bytes = allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "MB/s") mb = $(i - 1)
        else if ($i == "B/op") bytes = $(i - 1)
        else if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ", "
    first = 0
    printf "{\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (mb != "") printf ", \"mb_per_s\": %s", mb
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "]}\n" }
' "$TMP" >> "$OUT"

echo "==> appended run to $OUT ($(wc -l < "$OUT" | tr -d ' ') runs total)"
