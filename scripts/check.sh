#!/usr/bin/env sh
# Full local check: build, vet, race-enabled tests, and a short fuzz smoke
# over every fuzz target. This is what CI runs; run it before pushing.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target fuzzing budget (default 10s; "0" skips fuzzing)

set -eu

cd "$(dirname "$0")/.."

FUZZTIME="${1:-10s}"

echo "==> go build ./..."
go build ./...

echo "==> go build ./cmd/aarohid (serving daemon)"
go build -o /dev/null ./cmd/aarohid

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> serve integration (race): loopback daemon end-to-end"
go test -race -run 'TestServe|TestAarohid' ./internal/serve .

if [ "$FUZZTIME" != "0" ]; then
    # Go only allows one -fuzz target per invocation; run each explicitly.
    echo "==> fuzz smoke (${FUZZTIME} per target)"
    go test -run='^$' -fuzz='^FuzzCompileAndMatch$' -fuzztime="$FUZZTIME" ./internal/rex
    go test -run='^$' -fuzz='^FuzzParseLine$' -fuzztime="$FUZZTIME" ./internal/lexgen
    go test -run='^$' -fuzz='^FuzzScan$' -fuzztime="$FUZZTIME" ./internal/lexgen
    go test -run='^$' -fuzz='^FuzzWildcardMatch$' -fuzztime="$FUZZTIME" ./internal/baselines
    go test -run='^$' -fuzz='^FuzzWALDecode$' -fuzztime="$FUZZTIME" ./internal/wal
    go test -run='^$' -fuzz='^FuzzSnapshotDecode$' -fuzztime="$FUZZTIME" ./internal/wal
    go test -run='^$' -fuzz='^FuzzManifestDecode$' -fuzztime="$FUZZTIME" ./internal/registry
    go test -run='^$' -fuzz='^FuzzModelUploadDecode$' -fuzztime="$FUZZTIME" ./internal/serve
fi

echo "==> all checks passed"
