#!/usr/bin/env sh
# Full local check: build, vet, repo-invariant lint, race-enabled tests, and
# a short fuzz smoke over every fuzz target. This is what CI runs; run it
# before pushing.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime         per-target fuzzing budget (default 10s; "0" skips fuzzing)
#   BENCH_CHECK_TIME per-benchmark budget for the regression gate (default 300ms)

set -eu

cd "$(dirname "$0")/.."

FUZZTIME="${1:-10s}"

echo "==> go build ./..."
go build ./...

echo "==> go build ./cmd/aarohid (serving daemon)"
go build -o /dev/null ./cmd/aarohid

echo "==> go vet ./..."
go vet ./...

echo "==> aarohilint ./... (repo invariants: hotpath, lockblock, mustclose, durable, layering)"
go run ./cmd/aarohilint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> serve integration (race): loopback daemon and cluster end-to-end"
go test -race -run 'TestServe|TestAarohid|TestCluster' ./internal/serve .

echo "==> bench gate self-test (comparison logic on canned numbers)"
scripts/bench.sh -selftest

echo "==> bench regression gate (best-of-2 vs BENCH_trajectory.ndjson)"
BENCHTIME="${BENCH_CHECK_TIME:-300ms}" scripts/bench.sh -check

if [ "$FUZZTIME" != "0" ]; then
    # Go only allows one -fuzz target per invocation; run each explicitly.
    # One pkg:target entry per line.
    FUZZ_TARGETS="
        ./internal/rex:FuzzCompileAndMatch
        ./internal/lexgen:FuzzParseLine
        ./internal/lexgen:FuzzScan
        ./internal/baselines:FuzzWildcardMatch
        ./internal/wal:FuzzWALDecode
        ./internal/wal:FuzzAppendBatchDecode
        ./internal/wal:FuzzSnapshotDecode
        ./internal/registry:FuzzManifestDecode
        ./internal/serve:FuzzModelUploadDecode
        ./internal/arbiter:FuzzStateDecode
        ./internal/gossip:FuzzGossipDecode
        ./internal/gossip/ship:FuzzShipHandshake
        ./internal/gossip/ship:FuzzShipFrameDecode
    "
    echo "==> fuzz smoke (${FUZZTIME} per target)"
    for entry in $FUZZ_TARGETS; do
        pkg="${entry%%:*}"
        target="${entry##*:}"
        go test -run='^$' -fuzz="^${target}\$" -fuzztime="$FUZZTIME" "$pkg"
    done
fi

echo "==> all checks passed"
